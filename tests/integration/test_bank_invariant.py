"""Integration: the bank-transfer invariant under failures.

Money moves between accounts via atomic transactions; whatever fails —
crash between transactions, crash with an unforced log tail, total
media failure during an online backup — the recovered total balance
must equal the initial total.  A partial transfer surviving recovery
would be the classic atomicity bug.
"""

import random

import pytest

from repro.db import Database
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.txn import TransactionManager

ACCOUNTS = 16
OPENING_BALANCE = 100


def account(index):
    return PageId(0, index)


def open_bank(auto_force=True):
    db = Database(
        pages_per_partition=[ACCOUNTS + 8],
        policy="general",
        auto_force_log=auto_force,
    )
    txns = TransactionManager(db)
    with txns.begin("open-accounts") as txn:
        for index in range(ACCOUNTS):
            txn.execute(PhysicalWrite(account(index), OPENING_BALANCE))
    return db, txns


def transfer(txns, src, dst, amount, name):
    with txns.begin(name) as txn:
        txn.execute(
            PhysiologicalWrite(account(src), "increment", (-amount,))
        )
        txn.execute(
            PhysiologicalWrite(account(dst), "increment", (amount,))
        )


def total_balance(state_reader):
    return sum(state_reader(account(i)) for i in range(ACCOUNTS))


class TestBankInvariant:
    @pytest.mark.parametrize("seed", range(5))
    def test_total_preserved_across_crash(self, seed):
        db, txns = open_bank()
        rng = random.Random(seed)
        for step in range(60):
            src, dst = rng.sample(range(ACCOUNTS), 2)
            transfer(txns, src, dst, rng.randrange(1, 20), f"t{step}")
            if rng.random() < 0.2:
                db.install_some(1, rng)
        db.crash()
        assert db.recover().ok
        recovered_total = total_balance(
            lambda pid: db.stable.read_page(pid).value
        )
        assert recovered_total == ACCOUNTS * OPENING_BALANCE

    def test_unforced_tail_drops_whole_transactions(self):
        """With a lazy log, a crash loses the unforced tail — but commit
        forces, so every surviving prefix is transaction-aligned."""
        db, txns = open_bank(auto_force=False)
        rng = random.Random(7)
        for step in range(20):
            src, dst = rng.sample(range(ACCOUNTS), 2)
            transfer(txns, src, dst, 10, f"t{step}")
        # Raw (non-transactional) half-transfer that never gets forced:
        db.execute(
            PhysiologicalWrite(account(0), "increment", (-50,)),
            source="raw",
        )
        lost = db.crash()
        assert lost == 1  # exactly the dangling half-transfer
        assert db.recover().ok
        total = total_balance(lambda pid: db.stable.read_page(pid).value)
        assert total == ACCOUNTS * OPENING_BALANCE

    @pytest.mark.parametrize("seed", range(3))
    def test_total_preserved_across_media_failure(self, seed):
        db, txns = open_bank()
        rng = random.Random(seed)
        db.start_backup(steps=8)
        step = 0
        while db.backup_in_progress():
            db.backup_step(2)
            src, dst = rng.sample(range(ACCOUNTS), 2)
            transfer(txns, src, dst, rng.randrange(1, 20), f"t{step}")
            db.install_some(2, rng)
            step += 1
        for extra in range(10):
            src, dst = rng.sample(range(ACCOUNTS), 2)
            transfer(txns, src, dst, 5, f"post{extra}")
        db.media_failure()
        assert db.media_recover().ok
        total = total_balance(lambda pid: db.stable.read_page(pid).value)
        assert total == ACCOUNTS * OPENING_BALANCE

    def test_selective_redo_preserves_totals_of_kept_history(self):
        """Excluding a rogue teller's transfers keeps the books balanced
        — the taint closure removes whole transfers, never halves."""
        db, txns = open_bank()
        db.checkpoint()
        db.start_backup(steps=4)
        backup = db.run_backup(pages_per_tick=16)
        rng = random.Random(1)
        for step in range(12):
            src, dst = rng.sample(range(ACCOUNTS), 2)
            name = "rogue" if step % 3 == 0 else f"teller{step}"
            transfer(txns, src, dst, 7, name)
        result = db.selective_recover("rogue", backup=backup, transactional=True)
        assert result.outcome.ok
        total = total_balance(lambda pid: db.stable.read_page(pid).value)
        assert total == ACCOUNTS * OPENING_BALANCE
        assert result.analysis.directly_corrupt  # it did exclude some
