"""Integration: the Figure 5 measurement is robust to simulation knobs.

The closed forms assume uniform flush positions and steady rates; the
measured fractions should track them across different backup speeds,
flush rates, and database sizes — not just the benchmark defaults.
"""

import pytest

from repro.core import analysis
from repro.harness.experiments import fig5_measure


class TestRateRobustness:
    @pytest.mark.parametrize("backup_pages_per_tick", [2, 4, 8])
    def test_general_insensitive_to_backup_speed(self, backup_pages_per_tick):
        point = fig5_measure(
            "general", steps=8, pages=768, seed=2,
            backup_pages_per_tick=backup_pages_per_tick,
        )
        assert point.measured == pytest.approx(point.analytic, abs=0.09)

    @pytest.mark.parametrize("installs_per_tick", [3, 6])
    def test_tree_matches_when_flushing_keeps_up(self, installs_per_tick):
        point = fig5_measure(
            "tree", steps=8, pages=768, seed=2,
            installs_per_tick=installs_per_tick,
        )
        assert point.measured == pytest.approx(point.analytic, abs=0.09)

    def test_lagging_flushes_skew_above_the_model(self):
        """When the cache manager cannot keep up, flushes cluster late
        in the backup where ¬Pend is likelier — measured Prob{log}
        rises above the uniform-rate closed form.  A model deviation
        the paper's §5 assumptions predict, documented here."""
        lagging = fig5_measure(
            "tree", steps=8, pages=768, seed=2, installs_per_tick=1
        )
        keeping_up = fig5_measure(
            "tree", steps=8, pages=768, seed=2, installs_per_tick=3
        )
        assert lagging.measured > keeping_up.measured
        assert lagging.measured > lagging.analytic

    @pytest.mark.parametrize("pages", [256, 512, 2048])
    def test_insensitive_to_database_size(self, pages):
        point = fig5_measure("general", steps=4, pages=pages, seed=3)
        assert point.measured == pytest.approx(point.analytic, abs=0.09)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_seed_variance_is_small(self, seed):
        point = fig5_measure("tree", steps=8, pages=1024, seed=seed)
        assert point.measured == pytest.approx(point.analytic, abs=0.08)


class TestCrossPolicyOrdering:
    @pytest.mark.parametrize("steps", [2, 8, 32])
    def test_page_oriented_floor_is_zero(self, steps):
        """The degenerate policy (conventional fuzzy dump setting)
        never logs, at any step count."""
        from repro.db import Database
        from repro.sim.runner import InterleavedRun
        from repro.workloads import page_oriented_workload

        db = Database(pages_per_partition=[512], policy="page")
        run = InterleavedRun(
            db,
            page_oriented_workload(db.layout, seed=1, count=None),
            backup_steps=steps,
        )
        result = run.run(max_ticks=10_000)
        assert result.backup is not None
        assert db.metrics.iwof_during_backup == 0

    def test_three_policy_ordering(self):
        """page (0) < tree (~0.23) < general (~0.56) at N=8 — the
        paper's hierarchy of operation-class generality vs cost."""
        general = fig5_measure("general", 8, pages=768, seed=1).measured
        tree = fig5_measure("tree", 8, pages=768, seed=1).measured
        assert 0 < tree < general
