"""Integration: a full operator drill exercising every recovery tool.

One database lives through the complete lifecycle: workload → checkpoint
→ full backup → more work → incremental backup → crash → recovery →
partial media failure → partition recovery → intruder corruption →
selective redo → log truncation → final full media recovery.  Each stage
must leave the system verifiably correct for the next.
"""

import random

import pytest

from repro.db import Database
from repro.ids import PageId
from repro.ops.logical import CopyOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite


def partition_local_work(db, partition, rng, count, source="app"):
    size = db.layout.partition_size(partition)
    for _ in range(count):
        slot = rng.randrange(size)
        if rng.random() < 0.3 and size > 1:
            other = rng.randrange(size)
            if other != slot:
                db.execute(
                    CopyOp(PageId(partition, slot), PageId(partition, other)),
                    source=source,
                )
                continue
        db.execute(
            PhysiologicalWrite(
                PageId(partition, slot), "stamp", (rng.randrange(1000),)
            ),
            source=source,
        )


class TestOperatorDrill:
    def test_full_lifecycle(self):
        rng = random.Random(42)
        db = Database(pages_per_partition=[24, 24], policy="general")

        # Stage 0: seed and checkpoint.
        for partition in range(2):
            for slot in range(24):
                db.execute(
                    PhysicalWrite(
                        PageId(partition, slot), ("seed", partition, slot)
                    ),
                    source="loader",
                )
        db.checkpoint()
        db.take_checkpoint()

        # Stage 1: full backup with interleaved partition-local work.
        db.start_backup(steps=4)
        while db.backup_in_progress():
            db.backup_step(4)
            partition_local_work(db, rng.randrange(2), rng, 2)
            db.install_some(2, rng)
        full = db.latest_backup()
        assert full.is_complete

        # Stage 2: more work, then an incremental backup.
        partition_local_work(db, 0, rng, 10)
        db.start_backup(steps=4, incremental=True)
        incremental = db.run_backup(pages_per_tick=8)
        assert incremental.copied_count() < full.copied_count()

        # Stage 3: crash; recovery must reproduce the oracle.
        partition_local_work(db, 1, rng, 5)
        db.crash()
        assert db.recover().ok

        # Stage 4: partial media failure of partition 0.
        partition_local_work(db, 0, rng, 5)
        db.checkpoint()
        db.start_backup(steps=4)
        pre_fail_backup = db.run_backup(pages_per_tick=8)
        db.fail_partition(0)
        outcome = db.recover_partition(0, backup=pre_fail_backup)
        assert outcome.ok, outcome.diffs[:3]

        # Stage 5: an intruder corrupts data; selective redo excises it.
        db.start_backup(steps=4)
        clean = db.run_backup(pages_per_tick=8)
        db.execute(
            PhysicalWrite(PageId(0, 1), "!!garbage!!"), source="intruder"
        )
        db.execute(CopyOp(PageId(0, 1), PageId(0, 9)), source="app")
        partition_local_work(db, 1, rng, 3)
        result = db.selective_recover("intruder", backup=clean)
        assert result.outcome.ok
        assert result.analysis.directly_corrupt
        assert db.read(PageId(0, 1)) != "!!garbage!!"

        # Stage 6: retire old backups (newest-first: a base full cannot
        # retire while a retained incremental chains through it) and
        # truncate the log.
        for backup in (pre_fail_backup, incremental, full):
            db.retire_backup(backup)
        db.start_backup(steps=4)
        final_backup = db.run_backup(pages_per_tick=8)
        discarded = db.truncate_log()
        assert discarded > 0
        assert db.retention.is_usable(final_backup)

        # Stage 7: total media failure; the final backup restores.
        partition_local_work(db, 0, rng, 4)
        partition_local_work(db, 1, rng, 4)
        db.media_failure()
        final = db.media_recover(backup=final_backup, verify=False)
        # Verify manually against kept history: after selective redo the
        # oracle diverged, so rebuild expectations from the final state
        # via crash-consistency instead: replay check.
        assert not final.poisoned
        # The state must satisfy the structural no-violation invariant.
        from repro.recovery.explain import find_order_violations

        records = list(db.log.scan(final_backup.media_scan_start_lsn))
        assert find_order_violations(db.stable.snapshot(), records) == []

    def test_lifecycle_is_deterministic(self):
        """Running the drill twice produces identical logs."""
        def run():
            rng = random.Random(7)
            db = Database(pages_per_partition=[16, 16], policy="general")
            for partition in range(2):
                for slot in range(16):
                    db.execute(
                        PhysicalWrite(PageId(partition, slot), slot)
                    )
            db.start_backup(steps=4)
            while db.backup_in_progress():
                db.backup_step(4)
                partition_local_work(db, rng.randrange(2), rng, 2)
                db.install_some(2, rng)
            return db.log.end_lsn, db.metrics.iwof_records

        assert run() == run()
