"""Integration: media recovery from online backups under interleavings.

The central correctness property of the paper: for every interleaving of
update activity with the backup sweep, the completed backup plus the
media recovery log reproduce the current state.
"""

import random

import pytest

from repro.db import Database
from repro.sim.runner import InterleavedRun
from repro.workloads import (
    copy_chain_workload,
    fresh_copy_workload,
    mixed_logical_workload,
    tree_split_workload,
)


def interleaved_backup(
    policy,
    workload_factory,
    seed,
    steps=4,
    pages=96,
    ops_per_tick=3,
    backup_pages_per_tick=4,
):
    db = Database(pages_per_partition=[pages], policy=policy)
    workload = workload_factory(db)
    run = InterleavedRun(
        db,
        workload,
        seed=seed,
        ops_per_tick=ops_per_tick,
        installs_per_tick=2,
        backup_pages_per_tick=backup_pages_per_tick,
        backup_steps=steps,
    )
    result = run.run(max_ticks=5000)
    assert result.backup is not None, "backup did not complete"
    return db, result


class TestGeneralOperations:
    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_workload_recovers(self, seed):
        db, _ = interleaved_backup(
            "general",
            lambda db: mixed_logical_workload(db.layout, seed=seed, count=100_000),
            seed,
        )
        db.media_failure()
        outcome = db.media_recover()
        assert outcome.ok, outcome.diffs[:3]

    @pytest.mark.parametrize("seed", range(4))
    def test_copy_chains_recover(self, seed):
        db, _ = interleaved_backup(
            "general",
            lambda db: copy_chain_workload(db.layout, seed=seed, count=100_000),
            seed,
        )
        db.media_failure()
        assert db.media_recover().ok

    @pytest.mark.parametrize("steps", [1, 2, 8, 16])
    def test_any_step_count_recovers(self, steps):
        db, _ = interleaved_backup(
            "general",
            lambda db: mixed_logical_workload(db.layout, seed=7, count=100_000),
            seed=7,
            steps=steps,
        )
        db.media_failure()
        assert db.media_recover().ok


class TestTreeOperations:
    @pytest.mark.parametrize("seed", range(4))
    def test_tree_splits_recover(self, seed):
        db, _ = interleaved_backup(
            "tree",
            lambda db: tree_split_workload(db.layout, seed=seed, count=100_000),
            seed,
        )
        db.media_failure()
        outcome = db.media_recover()
        assert outcome.ok, outcome.diffs[:3]

    @pytest.mark.parametrize("seed", range(3))
    def test_fresh_copy_tree_recovers(self, seed):
        db, _ = interleaved_backup(
            "tree",
            lambda db: fresh_copy_workload(
                db.layout,
                seed=seed,
                tree_ops=True,
                is_clean=lambda p: not db.cm.is_dirty(p),
            ),
            seed,
        )
        db.media_failure()
        assert db.media_recover().ok

    def test_tree_policy_logs_less_than_general(self):
        """The headline of section 4: same workload shape, far fewer
        Iw/oF records under the tree policy."""
        fractions = {}
        for policy in ("general", "tree"):
            db, _ = interleaved_backup(
                policy,
                lambda db: fresh_copy_workload(
                    db.layout,
                    seed=1,
                    tree_ops=(policy == "tree"),
                    is_clean=lambda p: not db.cm.is_dirty(p),
                ),
                seed=1,
                steps=8,
                pages=512,
            )
            fractions[policy] = db.metrics.extra_logging_fraction
            db.media_failure()
            assert db.media_recover().ok
        assert fractions["tree"] < fractions["general"] * 0.7


class TestBackupContents:
    def test_updates_after_completion_not_in_backup(self):
        from repro.ids import PageId
        from repro.ops.physical import PhysicalWrite

        db = Database(pages_per_partition=[16], policy="general")
        db.start_backup(steps=2)
        backup = db.run_backup()
        db.execute(PhysicalWrite(PageId(0, 0), "late"))
        db.checkpoint()
        assert backup.read_page(PageId(0, 0)).value is None
        db.media_failure()
        outcome = db.media_recover(backup=backup)
        assert outcome.ok  # rolled forward past the late update

    def test_multiple_sequential_backups(self):
        db = Database(pages_per_partition=[48], policy="general")
        rng = random.Random(0)
        source = mixed_logical_workload(db.layout, seed=0, count=100_000)
        for round_number in range(3):
            db.start_backup(steps=4)
            while db.backup_in_progress():
                db.backup_step(6)
                db.execute(next(source))
                db.install_some(2, rng)
        assert len(db.engine.completed) == 3
        db.media_failure()
        # Any completed backup can restore to the present.
        for backup in db.engine.completed:
            db.stable.fail_media()
            outcome = db.media_recover(backup=backup)
            assert outcome.ok, f"backup {backup.backup_id} failed"


class TestMultiPartition:
    @pytest.mark.parametrize("seed", range(3))
    def test_parallel_partition_backup_recovers(self, seed):
        """Three partitions swept in parallel, with operations that may
        span partitions (the general policy checks each page against its
        own partition's progress under all the relevant latches)."""
        db = Database(pages_per_partition=[32, 32, 32], policy="general")
        rng = random.Random(seed)
        source = mixed_logical_workload(db.layout, seed=seed, count=100_000)
        db.start_backup(steps=4)
        while db.backup_in_progress():
            db.backup_step(6)
            db.execute(next(source))
            db.install_some(2, rng)
        db.media_failure()
        outcome = db.media_recover()
        assert outcome.ok, outcome.diffs[:3]
