"""Integration: crash recovery under adversarial logical workloads.

Crash at every point of a workload (after each tick), recover, compare
with the oracle.  Exercises write-graph-ordered flushing + LSN redo.
"""

import random

import pytest

from repro.db import Database
from repro.workloads import (
    copy_chain_workload,
    mixed_logical_workload,
    page_oriented_workload,
    tree_split_workload,
)

WORKLOADS = {
    "page": (page_oriented_workload, "page"),
    "chain": (copy_chain_workload, "general"),
    "mixed": (mixed_logical_workload, "general"),
    "tree": (tree_split_workload, "tree"),
}


def run_and_crash(workload_name, crash_after_ops, seed=0, pages=48):
    generator, policy = WORKLOADS[workload_name]
    db = Database(pages_per_partition=[pages], policy=policy)
    rng = random.Random(seed)
    count = 0
    for op in generator(db.layout, seed=seed, count=crash_after_ops + 50):
        if count >= crash_after_ops:
            break
        db.execute(op)
        count += 1
        if rng.random() < 0.3:
            db.install_some(1, rng)
    db.crash()
    return db.recover()


class TestCrashSweep:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("crash_after", [0, 1, 5, 20, 60, 150])
    def test_recover_at_any_point(self, workload, crash_after):
        outcome = run_and_crash(workload, crash_after)
        assert outcome.ok, (
            f"{workload} crash@{crash_after}: {outcome.summary()} "
            f"{outcome.diffs[:3]}"
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_recover_across_seeds(self, seed):
        outcome = run_and_crash("mixed", 100, seed=seed)
        assert outcome.ok, outcome.diffs[:3]


class TestRepeatedCrashes:
    def test_crash_recover_crash_recover(self):
        """Recovery itself must leave a state that can recover again."""
        db = Database(pages_per_partition=[48], policy="general")
        rng = random.Random(1)
        source = mixed_logical_workload(db.layout, seed=1, count=300)
        for round_number in range(3):
            for _ in range(80):
                op = next(source, None)
                if op is None:
                    break
                db.execute(op)
                if rng.random() < 0.25:
                    db.install_some(1, rng)
            db.crash()
            outcome = db.recover()
            assert outcome.ok, f"round {round_number}: {outcome.diffs[:3]}"

    def test_unforced_tail_lost_consistently(self):
        db = Database(
            pages_per_partition=[48], policy="general", auto_force_log=False
        )
        ops = list(mixed_logical_workload(db.layout, seed=2, count=60))
        for op in ops[:30]:
            db.execute(op)
        db.log.force()
        for op in ops[30:]:
            db.execute(op)
        lost = db.crash()
        assert lost == 30
        outcome = db.recover()
        assert outcome.ok


class TestCrashDuringBackup:
    @pytest.mark.parametrize("crash_tick", [0, 2, 5, 9])
    def test_backup_aborts_and_s_recovers(self, crash_tick):
        db = Database(pages_per_partition=[64], policy="general")
        rng = random.Random(3)
        source = mixed_logical_workload(db.layout, seed=3, count=500)
        db.start_backup(steps=4)
        for tick in range(crash_tick):
            db.backup_step(4)
            for _ in range(3):
                op = next(source, None)
                if op is not None:
                    db.execute(op)
            db.install_some(2, rng)
        db.crash()
        outcome = db.recover()
        assert outcome.ok, outcome.diffs[:3]
        assert db.latest_backup() is None

    def test_previous_backup_still_usable_after_crash(self):
        """Crash during backup #2: media recovery falls back to #1."""
        db = Database(pages_per_partition=[64], policy="general")
        rng = random.Random(4)
        source = mixed_logical_workload(db.layout, seed=4, count=500)
        for _ in range(50):
            db.execute(next(source))
        db.start_backup(steps=4)
        first = db.run_backup()
        for _ in range(50):
            db.execute(next(source))
        db.start_backup(steps=4)
        db.backup_step(8)
        db.crash()
        assert db.recover().ok
        # After crash recovery S is current; the old backup still rolls
        # forward to the present.
        db.media_failure()
        outcome = db.media_recover(backup=first)
        assert outcome.ok, outcome.diffs[:3]
