"""Exhaustive interleaving checks around the Figure 1 scenario.

Instead of sampling schedules, enumerate EVERY interleaving of
(logical operations | cache-manager installs | backup copy steps) for
the B-tree-split scenario and variants, and require media recovery to
succeed for all of them.  The naive dump, run under the same explorer,
must fail for at least one interleaving — demonstrating that the
paper's protocol closes a real, reachable hole.
"""

import pytest

from repro.db import Database
from repro.ids import PageId
from repro.ops.logical import CopyOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.ops.tree import MovRec, RmvRec
from repro.sim.explorer import InterleavingExplorer, merges


class TestMerges:
    def test_counts_binomial(self):
        # C(4,2) = 6 merges of two 2-element tracks.
        assert len(list(merges([[1, 2], ["a", "b"]]))) == 6

    def test_preserves_track_order(self):
        for schedule in merges([[1, 2, 3], ["a"]]):
            filtered = [x for x in schedule if isinstance(x, int)]
            assert filtered == [1, 2, 3]

    def test_empty_tracks(self):
        assert list(merges([[], []])) == [()]


def split_scenario(engine_kind, steps=4):
    """Figure 1: split straddling the frontier, every interleaving."""

    def factory():
        db = Database(pages_per_partition=[16], policy="general")
        old, new = PageId(0, 12), PageId(0, 1)
        records = tuple((k, f"v{k}") for k in range(6))
        db.execute(PhysicalWrite(old, records))
        db.checkpoint()
        if engine_kind == "engine":
            db.start_backup(steps=steps)
            copy_track = [lambda: db.backup_step(4) for _ in range(4)]
        else:
            db.naive.start_backup()
            copy_track = [lambda: db.naive.copy_some(4) for _ in range(4)]
        op_track = [
            lambda: db.execute(MovRec(old, 2, new)),
            lambda: db.execute(RmvRec(old, 2)),
        ]
        flush_track = [lambda: db.install_some(1), lambda: db.install_some(1)]

        def finish(database):
            database.checkpoint()
            if engine_kind == "engine":
                if database.backup_in_progress():
                    database.run_backup()
                return database.latest_backup()
            if database.naive.active is not None:
                database.naive.run_to_completion()
            return database.naive.latest_backup()

        return db, [op_track, flush_track, copy_track], finish

    return factory


class TestExhaustiveFigure1:
    def test_engine_recovers_under_every_interleaving(self):
        explorer = InterleavingExplorer(split_scenario("engine"))
        result = explorer.explore()
        assert result.interleavings == 420  # 8! / (2! 2! 4!)
        assert result.all_recovered, result.failures[:3]

    def test_naive_fails_for_some_interleaving(self):
        explorer = InterleavingExplorer(split_scenario("naive"))
        result = explorer.explore()
        assert result.interleavings == 420
        assert result.failures, (
            "the naive dump should be unrecoverable for at least one "
            "interleaving"
        )
        # ... but not all: when the split lands entirely in the pending
        # region even the naive dump survives.
        assert result.recovered > 0


def copy_chain_scenario():
    """A copy chain with source overwrites, all interleavings."""

    def factory():
        db = Database(pages_per_partition=[12], policy="general")
        a, b, c = PageId(0, 2), PageId(0, 7), PageId(0, 10)
        db.execute(PhysicalWrite(a, ("seed",)))
        db.checkpoint()
        db.start_backup(steps=3)
        op_track = [
            lambda: db.execute(CopyOp(a, b)),
            lambda: db.execute(PhysiologicalWrite(a, "stamp", (1,))),
            lambda: db.execute(CopyOp(b, c)),
        ]
        flush_track = [lambda: db.install_some(1) for _ in range(2)]
        copy_track = [lambda: db.backup_step(4) for _ in range(3)]

        def finish(database):
            database.checkpoint()
            if database.backup_in_progress():
                database.run_backup()

        return db, [op_track, flush_track, copy_track], finish

    return factory


class TestExhaustiveCopyChain:
    def test_every_interleaving_recovers(self):
        explorer = InterleavingExplorer(copy_chain_scenario())
        result = explorer.explore()
        assert result.interleavings == 560  # 8! / (3! 2! 3!)
        assert result.all_recovered, result.failures[:3]
