"""Integration: the protocol's stated assumptions, demonstrated.

The paper assumes (1) I/O page atomicity and (2) atomic multi-page
flushes for write-graph nodes with |vars| > 1.  These tests show the
assumptions are *load-bearing*: violating them with an injected torn
write produces exactly the unrecoverable states the machinery otherwise
prevents — and the structural checker catches the damage.
"""

import pytest

from repro.db import Database
from repro.errors import ReproError
from repro.ids import PageId
from repro.ops.logical import GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.storage.page import PageVersion


def pid(slot):
    return PageId(0, slot)


class TornWrite(ReproError):
    """Injected crash in the middle of a multi-page stable write."""


def tear_multi_page_writes(stable, after_pages=1):
    """Monkeypatch: apply only the first ``after_pages`` pages of the
    next multi-page atomic write, then crash."""
    original = stable.write_pages_atomically

    def torn(versions):
        if len(versions) <= after_pages:
            return original(versions)
        applied = dict(list(sorted(versions.items()))[:after_pages])
        original(applied)
        raise TornWrite("crash mid multi-page flush")

    stable.write_pages_atomically = torn
    return original


class TestMultiPageAtomicityIsLoadBearing:
    def _db_with_pair_node(self):
        """A write-graph node with vars = {X, Y} awaiting atomic flush."""
        db = Database(pages_per_partition=[16], policy="general")
        db.execute(PhysicalWrite(pid(5), ("source",)))
        db.checkpoint()
        # One logical op writing two pages -> |vars(n)| = 2.
        db.execute(
            GeneralLogicalOp([pid(5)], [pid(1), pid(2)], "copy_value")
        )
        # Overwrite the source so replay of the logical op needs order.
        db.execute(PhysiologicalWrite(pid(5), "stamp", ("post",)))
        return db

    def test_atomic_flush_keeps_things_recoverable(self):
        db = self._db_with_pair_node()
        db.checkpoint()
        db.crash()
        assert db.recover().ok

    def test_torn_multi_page_flush_breaks_recovery(self):
        """Tear the {X, Y} flush: X lands, Y does not, but both pages'
        operations were considered installed — recovery goes wrong
        unless atomicity holds.

        We tear the PAIR flush and then also let the source's overwrite
        reach S (as a cache manager believing the install succeeded
        would).  The recovered state then disagrees with the oracle.
        """
        db = self._db_with_pair_node()
        node = db.cm.graph.holder_of(pid(1))
        assert node.vars == {pid(1), pid(2)}
        original = tear_multi_page_writes(db.stable, after_pages=1)
        with pytest.raises(TornWrite):
            db.cm.install_node(node)
        db.stable.write_pages_atomically = original
        # The damage: simulate the "believed installed" aftermath by
        # flushing the source overwrite directly (what a CM whose
        # bookkeeping ran ahead of the torn write would have done).
        cached = db.cm.cached(pid(5))
        db.stable.write_page(pid(5), cached.value, cached.page_lsn)
        db.crash()
        outcome = db.recover()
        assert not outcome.ok, (
            "a torn multi-page flush plus a premature source overwrite "
            "must be unrecoverable — page atomicity is load-bearing"
        )

    def test_structural_checker_flags_the_torn_state(self):
        db = self._db_with_pair_node()
        node = db.cm.graph.holder_of(pid(1))
        original = tear_multi_page_writes(db.stable, after_pages=1)
        with pytest.raises(TornWrite):
            db.cm.install_node(node)
        db.stable.write_pages_atomically = original
        cached = db.cm.cached(pid(5))
        db.stable.write_page(pid(5), cached.value, cached.page_lsn)
        from repro.recovery.explain import find_order_violations

        violations = find_order_violations(
            db.stable.snapshot(), list(db.log.scan())
        )
        assert violations, "the torn state violates installation order"


class TestSinglePageAtomicityAssumption:
    def test_partial_page_value_is_modelled_as_impossible(self):
        """Single-page writes are atomic by construction: a PageVersion
        is swapped in whole.  This test pins that modelling decision."""
        db = Database(pages_per_partition=[8], policy="general")
        db.execute(PhysicalWrite(pid(0), ("whole", "value")))
        db.flush_page(pid(0))
        version = db.stable.read_page(pid(0))
        assert isinstance(version, PageVersion)
        assert version.value == ("whole", "value")
