"""Integration: recovery composition and idempotence edge cases.

Recovery paths must compose: recovering twice, backing up right after a
recovery, media recovery following crash recovery, crashing during the
post-recovery workload — none of these may corrupt state.
"""

import random

import pytest

from repro.db import Database
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.workloads import mixed_logical_workload


def build_db(seed=0, ops=120, pages=48):
    db = Database(pages_per_partition=[pages], policy="general")
    rng = random.Random(seed)
    for op in mixed_logical_workload(db.layout, seed=seed, count=ops):
        db.execute(op)
        if rng.random() < 0.3:
            db.install_some(1, rng)
    return db, rng


class TestIdempotence:
    def test_recover_twice(self):
        db, _ = build_db()
        db.crash()
        first = db.recover()
        assert first.ok
        db.crash()
        second = db.recover()
        assert second.ok
        assert second.replayed == 0  # nothing left to redo

    def test_media_recover_twice_from_same_backup(self):
        db, _ = build_db()
        db.start_backup(steps=4)
        backup = db.run_backup()
        db.media_failure()
        assert db.media_recover(backup=backup).ok
        db.media_failure()
        assert db.media_recover(backup=backup).ok

    def test_replay_is_idempotent_over_recovered_state(self):
        """Running redo again over an already-recovered S changes
        nothing (the LSN test skips everything)."""
        from repro.recovery.crash_recovery import run_crash_recovery

        db, _ = build_db()
        db.crash()
        db.recover()
        snapshot = db.stable.snapshot()
        outcome = run_crash_recovery(
            db.stable, db.log, scan_start_lsn=1, apply_to_stable=True
        )
        assert outcome.replayed == 0
        assert db.stable.snapshot() == snapshot


class TestComposition:
    def test_backup_immediately_after_crash_recovery(self):
        db, rng = build_db()
        db.crash()
        assert db.recover().ok
        db.start_backup(steps=4)
        backup = db.run_backup()
        report = db.validate_backup(backup)
        assert report.ok, report.findings
        db.media_failure()
        assert db.media_recover(backup=backup).ok

    def test_media_recovery_then_new_work_then_crash(self):
        db, rng = build_db()
        db.start_backup(steps=4)
        db.run_backup()
        db.media_failure()
        assert db.media_recover().ok
        # New work after the restore...
        for op in mixed_logical_workload(db.layout, seed=9, count=40):
            db.execute(op)
            if rng.random() < 0.3:
                db.install_some(1, rng)
        db.crash()
        assert db.recover().ok

    def test_two_generations_of_backup_after_recovery(self):
        db, rng = build_db()
        db.start_backup(steps=4)
        first = db.run_backup()
        db.media_failure()
        assert db.media_recover(backup=first).ok
        for op in mixed_logical_workload(db.layout, seed=11, count=30):
            db.execute(op)
        db.start_backup(steps=4)
        second = db.run_backup()
        db.media_failure()
        # Both generations still roll forward to the current state.
        assert db.media_recover(backup=second).ok
        db.media_failure()
        assert db.media_recover(backup=first).ok

    def test_crash_between_incremental_links(self):
        db, rng = build_db()
        db.checkpoint()
        db.start_backup(steps=4)
        full = db.run_backup()
        for op in mixed_logical_workload(db.layout, seed=5, count=20):
            db.execute(op)
        db.crash()
        assert db.recover().ok
        for op in mixed_logical_workload(db.layout, seed=6, count=20):
            db.execute(op)
        db.start_backup(steps=4, incremental=True)
        incremental = db.run_backup()
        db.media_failure()
        outcome = db.media_recover_chain([full, incremental])
        assert outcome.ok, outcome.diffs[:3]
