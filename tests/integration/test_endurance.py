"""Integration: endurance — many operational cycles on one database.

Simulates weeks of operation compressed: repeated cycles of workload,
checkpoints, full + incremental backups, log truncation, occasional
crashes, and periodic restore drills.  State must stay verifiable after
every cycle and the log must not grow without bound.
"""

import random

import pytest

from repro.db import Database
from repro.workloads import mixed_logical_workload


class TestEndurance:
    def test_ten_operational_cycles(self):
        db = Database(pages_per_partition=[96], policy="general")
        rng = random.Random(123)
        source = mixed_logical_workload(db.layout, seed=123, count=10**9)
        log_sizes = []

        for cycle in range(10):
            # Workload burst.
            for _ in range(60):
                db.execute(next(source))
                if rng.random() < 0.4:
                    db.install_some(2, rng)
            db.take_checkpoint()

            # Backup: full every third cycle, incremental otherwise.
            incremental = cycle % 3 != 0 and db.latest_backup() is not None
            db.start_backup(steps=4, incremental=incremental)
            while db.backup_in_progress():
                db.backup_step(16)
                db.execute(next(source))
                db.install_some(2, rng)

            # Occasional crash.
            if cycle % 4 == 2:
                db.crash()
                assert db.recover().ok

            # Retention: keep the last full backup (and anything after).
            # Obsolete generations retire newest-first: a base cannot be
            # retired while retained incrementals still chain through it
            # (ChainPinnedError).
            fulls = [
                backup
                for backup in db.engine.completed
                if getattr(backup, "base_backup_id", None) is None
            ]
            for backup in reversed(db.engine.completed):
                if backup.completion_lsn < fulls[-1].media_scan_start_lsn:
                    db.retire_backup(backup)
            db.checkpoint()
            db.truncate_log()
            log_sizes.append(len(db.log))

            # Restore drill every few cycles: the latest full + later
            # incrementals must reproduce the current state.
            if cycle % 3 == 2:
                chain = [fulls[-1]] + [
                    backup
                    for backup in db.engine.completed
                    if getattr(backup, "base_backup_id", None) is not None
                    and backup.media_scan_start_lsn
                    >= fulls[-1].media_scan_start_lsn
                    and not db.retention.is_retired(backup)
                ]
                db.media_failure()
                outcome = db.media_recover_chain(chain)
                assert outcome.ok, (
                    f"cycle {cycle}: {outcome.summary()} "
                    f"{outcome.diffs[:2]}"
                )

        # The retained log is bounded: truncation kept it near one
        # backup-cycle of history, far below the total ever written.
        assert db.log.end_lsn > 700
        assert max(log_sizes) < db.log.end_lsn * 0.8

    def test_fifty_backup_generations(self):
        """Backups taken in rapid succession all remain individually
        usable until retired."""
        db = Database(pages_per_partition=[48], policy="general")
        rng = random.Random(5)
        source = mixed_logical_workload(db.layout, seed=5, count=10**9)
        for _ in range(50):
            for _ in range(6):
                db.execute(next(source))
                db.install_some(1, rng)
            db.start_backup(steps=2)
            db.run_backup(pages_per_tick=24)
        assert len(db.engine.completed) == 50
        # Spot-check a handful of generations.
        for index in (0, 10, 25, 49):
            db.media_failure()
            outcome = db.media_recover(backup=db.engine.completed[index])
            assert outcome.ok, f"generation {index}"
