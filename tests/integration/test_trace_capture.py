"""Trace capture end-to-end: an unrecovered scenario must yield a trace
naming the injected fault point and the recovery phase that observed it.

This is the observability layer's acceptance path: faultsweep records
every unrecovered case, ``dump_failure_traces`` replays each with a
recording tracer, and the JSONL output answers "which injection broke
which recovery" without re-running the sweep under a debugger.
"""

import pytest

from repro.cli import main
from repro.core.config import BackupConfig
from repro.db import Database
from repro.harness.faultsweep import (
    FailureCase,
    ScenarioResult,
    SweepReport,
    capture_failure_trace,
    dump_failure_traces,
)
from repro.ids import PageId
from repro.obs import events as ev
from repro.obs.tracer import Tracer, load_jsonl
from repro.ops.physical import PhysicalWrite
from repro.recovery.explain import render_timeline
from repro.sim.faults import FaultKind, FaultPlane, FaultSpec, IOPoint


def _sabotaged_recovery_trace():
    """Drive a run into a crash fault, then sabotage the truncation point
    so crash recovery skips the needed redo and verifiably fails."""
    from repro.errors import SimulatedCrash

    tracer = Tracer()
    db = Database(pages_per_partition=[32], tracer=tracer)
    db.attach_faults(FaultPlane([
        FaultSpec(FaultKind.CRASH, point=IOPoint.STABLE_MULTI_WRITE,
                  at_io=2),
    ]))
    with pytest.raises(SimulatedCrash):
        for i in range(32):
            db.execute(PhysicalWrite(PageId(0, i % 16), ("v", i)))
            db.install_some(2)
    db.crash()
    # Sabotage: pretend S already holds everything, skipping redo.
    db.cm.stable_truncation_point = db.log.end_lsn + 1
    with db.faults.suspended():
        outcome = db.recover()
    return tracer, outcome


class TestUnrecoveredScenarioTrace:
    def test_trace_names_fault_point_and_observing_phase(self):
        tracer, outcome = _sabotaged_recovery_trace()
        assert not outcome.ok, "sabotage should have broken recovery"

        faults = tracer.find(ev.FAULT_INJECTED)
        assert faults, "the injected fault must appear in the trace"
        assert faults[0].get("point") == IOPoint.STABLE_MULTI_WRITE
        assert faults[0].get("kind") == FaultKind.CRASH

        verifies = [
            e for e in tracer.find(ev.RECOVERY_PHASE)
            if e.get("phase") == "verify"
        ]
        assert verifies, "the verify phase must appear in the trace"
        assert verifies[0].get("kind") == "crash"
        assert verifies[0].get("diffs", 0) > 0

        completes = [
            e for e in tracer.find(ev.RECOVERY_PHASE)
            if e.get("phase") == "complete"
        ]
        assert completes and completes[0].get("ok") is False

    def test_timeline_links_the_fault_to_the_failed_phase(self):
        tracer, _ = _sabotaged_recovery_trace()
        text = render_timeline(tracer.events)
        assert f"crash at {IOPoint.STABLE_MULTI_WRITE}" in text
        assert "observed by crash recovery phase 'verify'" in text


class TestFaultsweepCapture:
    def _failing_report(self):
        specs = (FaultSpec(FaultKind.CRASH, point=IOPoint.ANY, at_io=6),)
        result = ScenarioResult("crash-sweep-serial")
        result.record_failure("at_io=6", specs, seed=0, batched=False)
        return SweepReport(seed=0, results=[result])

    def test_capture_replays_case_with_header(self):
        report = self._failing_report()
        events = capture_failure_trace(report.failures[0])
        assert events[0].kind == ev.TRACE_HEADER
        assert events[0].get("scenario") == "crash-sweep-serial"
        assert events[0].get("label") == "at_io=6"
        assert events[0].get("specs")[0]["at_io"] == 6
        assert any(e.kind == ev.FAULT_INJECTED for e in events)
        assert any(e.kind == ev.RECOVERY_PHASE for e in events)

    def test_dump_writes_tagged_jsonl(self, tmp_path):
        report = self._failing_report()
        path = tmp_path / "failures.jsonl"
        assert dump_failure_traces(report, str(path)) == 1
        events = load_jsonl(str(path))
        assert events and all(e.get("case") == 0 for e in events)
        assert events[0].kind == ev.TRACE_HEADER

    def test_record_failure_collects_cases(self):
        report = self._failing_report()
        assert len(report.failures) == 1
        case = report.failures[0]
        assert isinstance(case, FailureCase)
        assert case.scenario == "crash-sweep-serial"
        assert not report.results[0].ok
        assert "at_io=6:FAILED" in report.results[0].detail


class TestTraceCli:
    def _write_trace(self, tmp_path):
        report = TestFaultsweepCapture()._failing_report()
        path = tmp_path / "failures.jsonl"
        dump_failure_traces(report, str(path))
        return str(path)

    def test_trace_command_summarizes(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "events by kind" in out
        assert "faults injected" in out

    def test_trace_command_timeline(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main(["trace", path, "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "causality:" in out

    def test_trace_command_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", str(empty)]) == 1

    def test_faultsweep_trace_flag_skips_on_pass(self, tmp_path, capsys):
        path = tmp_path / "sweep.jsonl"
        code = main(["faultsweep", "--quick", "--stride", "64",
                     "--trace", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert not path.exists()
        assert "not written" in out


class TestTracedSweepStaysGreen:
    def test_normal_backup_recovery_unaffected_by_tracing(self):
        """A traced run and an untraced run produce identical outcomes."""
        def run(tracer):
            db = Database(pages_per_partition=[32], tracer=tracer)
            for i in range(16):
                db.execute(PhysicalWrite(PageId(0, i), (i,)))
            db.start_backup(BackupConfig(steps=4))
            db.run_backup(BackupConfig(pages_per_tick=8))
            db.media_failure()
            return db.media_recover()

        untraced = run(None)
        traced = run(Tracer())
        assert untraced.ok and traced.ok
        assert untraced.replayed == traced.replayed
        assert untraced.skipped == traced.skipped
