"""Integration tests: self-healing recovery across the backup chain.

End-to-end corruption scenarios: a rotted backup page healed by falling
back to an older generation; content lost everywhere honestly
quarantined; damaged stable pages healed by escalating crash recovery
into media recovery or a full log-driven rebuild; a corrupt log tail
truncated before analysis; damaged incremental links skipped during the
chain overlay; and the trace timeline linking the injected bit flip to
the healing recovery.
"""

import random

import pytest

from repro.core.config import BackupConfig
from repro.db import Database
from repro.harness.faultsweep import _bitrot_scenarios, _run_bitrot_one
from repro.ids import PageId
from repro.obs import events as ev
from repro.obs.tracer import Tracer
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.recovery.explain import render_timeline
from repro.sim.faults import FaultKind, FaultSpec, IOPoint
from repro.storage.page import PageVersion, rot_value


def pid(slot):
    return PageId(0, slot)


def rot_stable_page(db, page_id):
    """Targeted bit rot: replace the cell, leave the envelope stale."""
    page = db.stable._pages[page_id]
    old = page.version
    page.version = PageVersion(rot_value(old.value), old.page_lsn)


def rot_backup_page(backup, page_id):
    old = backup._versions[page_id]
    backup._versions[page_id] = PageVersion(
        rot_value(old.value), old.page_lsn
    )


def fresh_db(pages=32):
    return Database(pages_per_partition=[pages], policy="general")


def take_full(db, steps=4):
    db.start_backup(BackupConfig(steps=steps))
    return db.run_backup()


class TestGenerationFallback:
    def test_rotted_newest_backup_falls_back_to_older(self):
        db = fresh_db()
        for slot in range(8):
            db.execute(PhysicalWrite(pid(slot), ("gen1", slot)))
        take_full(db)
        for slot in range(8):
            db.execute(PhysicalWrite(pid(slot), ("gen2", slot)))
        newest = take_full(db)
        rot_backup_page(newest, newest.copy_order()[0])

        tracer = Tracer()
        db.attach_tracer(tracer)
        db.media_failure()
        outcome = db.media_recover()
        assert outcome.ok
        assert not outcome.degraded
        assert outcome.quarantined == []
        actions = [
            e.fields.get("action") for e in tracer.events
            if e.kind == ev.CHAIN_FALLBACK
        ]
        assert "older-generation" in actions
        assert db.metrics.corruption_detected >= 1
        assert db.metrics.corruption_healed >= 1

    def test_rot_predating_log_coverage_is_quarantined(self):
        """No older generation, no covering log records: honest loss."""
        db = fresh_db()
        for slot in range(8):
            db.execute(PhysicalWrite(pid(slot), ("cold", slot)))
            db.flush_page(pid(slot))
        db.checkpoint()
        # The backup scan starts after these (installed) writes, so its
        # log suffix never rewrites them; a rotted copy is unrecoverable.
        backup = take_full(db)
        victim = backup.copy_order()[0]
        rot_backup_page(backup, victim)

        db.media_failure()
        outcome = db.media_recover()
        assert outcome.ok  # honest: correct outside the quarantine set
        assert outcome.degraded
        assert victim in outcome.quarantined
        assert db.metrics.pages_quarantined >= 1

    def test_rot_covered_by_log_is_healed_in_place(self):
        """Blind physical redo after the scan start rebuilds the page."""
        db = fresh_db()
        take_full(db, steps=8)
        for slot in range(8):
            db.execute(PhysicalWrite(pid(slot), ("hot", slot)))
        db.checkpoint()
        backup = db.latest_backup()
        rot_backup_page(backup, backup.copy_order()[0])

        db.media_failure()
        outcome = db.media_recover()
        assert outcome.ok


class TestCrashRecoveryEscalation:
    def test_damaged_stable_healed_from_backup(self):
        db = fresh_db()
        rng = random.Random(0)
        for slot in range(16):
            db.execute(PhysicalWrite(pid(slot), ("record", slot)))
            db.install_some(2, rng)
        take_full(db)
        assert db.stable._bitrot(rng)
        db.crash()
        outcome = db.recover()
        assert outcome.ok
        assert outcome.quarantined == []
        assert db.stable.damaged_pages() == []
        assert db.metrics.corruption_detected >= 1

    def test_damaged_stable_rebuilt_from_full_log(self):
        """No backup at all — but the log still reaches back to LSN 1."""
        db = fresh_db()
        rng = random.Random(0)
        for slot in range(16):
            db.execute(PhysicalWrite(pid(slot), ("record", slot)))
            db.install_some(2, rng)
        assert db.stable._bitrot(rng)
        db.crash()
        outcome = db.recover()
        assert outcome.ok
        assert db.stable.damaged_pages() == []

    def test_corrupt_log_tail_truncated_before_analysis(self):
        db = fresh_db()
        rng = random.Random(0)
        for slot in range(16):
            db.execute(PhysicalWrite(pid(slot), ("record", slot)))
            db.install_some(2, rng)
        assert db.log._bitrot(rng)
        db.crash()
        outcome = db.recover()
        assert outcome.ok
        assert db.metrics.log_tail_truncated >= 1
        assert db.log.damaged_records() == []


class TestChainHealing:
    def build_chain(self):
        db = fresh_db()
        for slot in range(16):
            db.execute(PhysicalWrite(pid(slot), ("base", slot)))
        db.checkpoint()
        full = take_full(db)
        for slot in (3, 7):
            db.execute(PhysiologicalWrite(pid(slot), "stamp", ("inc",)))
        db.start_backup(steps=4, incremental=True)
        incremental = db.run_backup()
        return db, full, incremental

    def test_damaged_link_page_healed_by_earlier_copy(self):
        db, full, incremental = self.build_chain()
        rot_backup_page(incremental, pid(3))
        tracer = Tracer()
        db.attach_tracer(tracer)
        db.media_failure()
        outcome = db.media_recover_chain([full, incremental])
        assert outcome.ok
        assert not outcome.degraded
        actions = [
            e.fields.get("action") for e in tracer.events
            if e.kind == ev.CHAIN_FALLBACK
        ]
        assert "skip-damaged-link-pages" in actions

    def test_page_damaged_in_every_link_is_quarantined(self):
        db, full, incremental = self.build_chain()
        # pid(1) was never updated after the full backup, so only the
        # full carries it and no log record since the base scan start
        # rewrites it: rot there is unrecoverable.
        assert pid(1) not in incremental
        rot_backup_page(full, pid(1))
        db.media_failure()
        outcome = db.media_recover_chain([full, incremental])
        assert outcome.ok
        assert outcome.degraded
        assert pid(1) in outcome.quarantined


class TestBitrotSweepScenarios:
    def test_all_targets_recover_or_quarantine(self):
        for result in _bitrot_scenarios(seed=1, batched=True, samples=1):
            assert result.total >= 1, result.name
            assert result.ok, (result.name, result.detail)

    def test_failure_case_would_be_replayable(self):
        # The sweep stores the spec (with its corruption seed) verbatim,
        # so a failing case replays with the identical bit flip.
        spec = FaultSpec(FaultKind.BITROT, point=IOPoint.LOG_APPEND,
                         at_io=5, seed=3)
        first, _ = _run_bitrot_one(spec, 3, False, "crash")
        second, _ = _run_bitrot_one(spec, 3, False, "crash")
        assert first.ok == second.ok
        assert first.quarantined == second.quarantined


class TestTimelineLinksFaultToHealing:
    def test_bit_flip_shows_up_with_healing_recovery(self):
        tracer = Tracer()
        spec = FaultSpec(FaultKind.BITROT,
                         point=IOPoint.BACKUP_RECORD, at_io=1, seed=0)
        outcome, _db = _run_bitrot_one(spec, 0, False, "media",
                                       tracer=tracer)
        assert outcome.ok
        kinds = {e.kind for e in tracer.events}
        assert ev.FAULT_INJECTED in kinds
        assert ev.CORRUPTION_DETECTED in kinds
        assert ev.CHAIN_FALLBACK in kinds
        timeline = render_timeline(tracer.events)
        assert "fault_injected" in timeline
        assert "corruption_detected" in timeline
        assert "chain_fallback" in timeline
