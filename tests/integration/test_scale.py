"""Integration: moderately large configurations (scale smoke).

Larger than the unit-test configs by an order of magnitude — enough to
shake out quadratic blowups in the write graph, the sweep, and replay,
while staying fast enough for CI (a few seconds).
"""

import random

import pytest

from repro.btree import BTree
from repro.db import Database
from repro.kvstore import KVStore
from repro.workloads import mixed_logical_workload, tree_split_workload


class TestScale:
    def test_4k_page_database_full_cycle(self):
        db = Database(pages_per_partition=[2048, 2048], policy="general")
        rng = random.Random(0)
        source = mixed_logical_workload(db.layout, seed=0, count=2000)
        for op in source:
            db.execute(op)
            if rng.random() < 0.4:
                db.install_some(2, rng)
        db.start_backup(steps=8)
        while db.backup_in_progress():
            db.backup_step(128)
            db.install_some(2, rng)
        db.media_failure()
        outcome = db.media_recover()
        assert outcome.ok, outcome.diffs[:3]

    def test_btree_with_thousands_of_keys(self):
        db = Database(pages_per_partition=[4096], policy="tree")
        tree = BTree(db, order=32, logging="tree").create()
        rng = random.Random(1)
        keys = list(range(5000))
        rng.shuffle(keys)
        for key in keys:
            tree.insert(key, ("payload", key))
        assert tree.check_invariants() == 5000
        for key in rng.sample(keys, 2000):
            assert tree.delete(key)
        assert tree.check_invariants() == 3000
        db.crash()
        assert db.recover().ok
        reopened = BTree.attach(db, order=32)
        assert reopened.check_invariants() == 3000

    def test_kvstore_sustained_churn_with_backups(self):
        store = KVStore.create(capacity_pages=2048, order=32)
        rng = random.Random(2)
        live = set()
        for round_number in range(3):
            store.db.start_backup(steps=8)
            key_base = round_number * 1000
            while store.db.backup_in_progress():
                store.db.backup_step(64)
                for _ in range(5):
                    key = key_base + rng.randrange(1000)
                    if key in live and rng.random() < 0.3:
                        store.delete(key)
                        live.discard(key)
                    else:
                        store.put(key, ("v", key))
                        live.add(key)
                store.db.install_some(3, rng)
        assert len(store.db.engine.completed) == 3
        store.simulate_media_failure()
        store.restore_from_backup()
        assert len(store) == len(live)

    def test_long_log_replay(self):
        """10k-record log, lazy flushing, single crash at the end."""
        db = Database(pages_per_partition=[512], policy="general")
        rng = random.Random(3)
        for op in mixed_logical_workload(db.layout, seed=3, count=10_000):
            db.execute(op)
            if rng.random() < 0.05:  # rarely flush: most work is redone
                db.install_some(1, rng)
        db.crash()
        outcome = db.recover()
        assert outcome.ok
        assert outcome.replayed > 1000

    def test_deep_tree_workload_media_recovery(self):
        db = Database(pages_per_partition=[1024], policy="tree")
        rng = random.Random(4)
        source = tree_split_workload(db.layout, seed=4, count=3000,
                                     records_per_page=6)
        db.start_backup(steps=8)
        for op in source:
            db.execute(op)
            if rng.random() < 0.5:
                db.install_some(1, rng)
            if db.backup_in_progress() and rng.random() < 0.3:
                db.backup_step(16)
        while db.backup_in_progress():
            db.backup_step(64)
        db.media_failure()
        assert db.media_recover().ok
