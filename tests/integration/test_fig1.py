"""Integration: the Figure 1 scenario — the paper's motivating failure.

A B-tree node splits while a backup sweep has already copied the new
page's location but not the old page's.  With logical MovRec/RmvRec
logging:

* the conventional fuzzy dump produces an unrecoverable backup (the
  moved records exist neither in B nor on the log);
* the paper's engine produces a recoverable one (Iw/oF put the needed
  value on the media log).
"""

import pytest

from repro.harness.experiments import fig1_scenario
from repro.recovery.explain import find_order_violations


class TestFigure1:
    def test_naive_dump_is_unrecoverable(self):
        outcome = fig1_scenario("naive")
        assert not outcome.recovered
        assert outcome.diffs >= 1
        assert not outcome.moved_records_in_backup

    def test_engine_is_recoverable(self):
        outcome = fig1_scenario("engine")
        assert outcome.recovered

    def test_order_violation_detected_structurally(self):
        """The naive backup image violates the write-graph order for B."""
        from repro.db import Database
        from repro.ids import PageId
        from repro.ops.physical import PhysicalWrite
        from repro.ops.tree import MovRec, RmvRec

        db = Database(pages_per_partition=[32], policy="general")
        old, new = PageId(0, 20), PageId(0, 2)
        db.execute(PhysicalWrite(old, tuple((k, k) for k in range(10))))
        db.checkpoint()
        db.naive.start_backup()
        db.naive.copy_some(5)
        db.execute(MovRec(old, 4, new))
        db.execute(RmvRec(old, 4))
        db.checkpoint()
        backup = db.naive.run_to_completion()
        records = list(db.log.scan(backup.media_scan_start_lsn))
        violations = find_order_violations(backup.pages(), records)
        assert violations
        assert violations[0].page == old
        assert new in violations[0].lost_targets

    def test_engine_backup_is_structurally_clean(self):
        from repro.db import Database
        from repro.ids import PageId
        from repro.ops.physical import PhysicalWrite
        from repro.ops.tree import MovRec, RmvRec

        db = Database(pages_per_partition=[32], policy="general")
        old, new = PageId(0, 20), PageId(0, 2)
        db.execute(PhysicalWrite(old, tuple((k, k) for k in range(10))))
        db.checkpoint()
        db.start_backup(steps=4)
        db.backup_step(5)
        db.execute(MovRec(old, 4, new))
        db.execute(RmvRec(old, 4))
        db.checkpoint()
        backup = db.run_backup()
        records = list(db.log.scan(backup.media_scan_start_lsn))
        assert find_order_violations(backup.pages(), records) == []

    def test_naive_dump_fine_when_split_not_straddling(self):
        """If the whole split lands in the pending region, even the naive
        dump survives — the failure needs the interleaving of Figure 1."""
        from repro.db import Database
        from repro.ids import PageId
        from repro.ops.physical import PhysicalWrite
        from repro.ops.tree import MovRec, RmvRec

        db = Database(pages_per_partition=[32], policy="general")
        old, new = PageId(0, 20), PageId(0, 25)  # both beyond the frontier
        db.execute(PhysicalWrite(old, tuple((k, k) for k in range(10))))
        db.checkpoint()
        db.naive.start_backup()
        db.naive.copy_some(5)
        db.execute(MovRec(old, 4, new))
        db.execute(RmvRec(old, 4))
        db.checkpoint()
        backup = db.naive.run_to_completion()
        db.media_failure()
        assert db.media_recover(backup=backup).ok
