"""Property-based tests for the codec and operation serialization."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.codec import decode_value, encode_value
from repro.ids import PageId
from repro.wal.log_manager import LogManager
from repro.wal.serialize import (
    op_from_spec,
    op_to_spec,
    record_from_spec,
    record_to_spec,
)

# ---------------------------------------------------------------------------
# Codec: arbitrary nested immutable values round-trip exactly.
# ---------------------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.floats(allow_nan=False, width=32),
    st.builds(PageId, st.integers(0, 7), st.integers(0, 63)),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4).map(tuple),
        st.lists(
            st.one_of(
                st.integers(0, 100), st.text(max_size=5)
            ),
            max_size=4,
            unique=True,
        ).map(frozenset),
    ),
    max_leaves=12,
)


class TestCodecProperties:
    @given(values)
    @settings(max_examples=300, deadline=None)
    def test_roundtrip_identity(self, value):
        assert decode_value(encode_value(value)) == value

    @given(values)
    @settings(max_examples=100, deadline=None)
    def test_encoded_form_is_json_safe(self, value):
        import json

        json.dumps(encode_value(value))


# ---------------------------------------------------------------------------
# Operations: every generated operation round-trips replay-equivalently.
# ---------------------------------------------------------------------------

from tests.property.test_write_graph_properties import (  # noqa: E402
    N_PAGES,
    operations,
)


class TestOpSpecProperties:
    @given(operations())
    @settings(max_examples=300, deadline=None)
    def test_sets_and_effects_preserved(self, op):
        clone = op_from_spec(op_to_spec(op))
        assert clone.readset == op.readset
        assert clone.writeset == op.writeset
        # Apply both to the same inputs: identical results, or the same
        # failure (a type-mismatched transform fails the same way on
        # both sides — what matters is replay equivalence).
        reads = {pid: ((1, "x"),) for pid in op.readset}

        def outcome(operation):
            try:
                return ("ok", operation.apply(reads))
            except Exception as exc:  # noqa: BLE001
                return ("err", type(exc).__name__)

        assert outcome(clone) == outcome(op)

    @given(operations(), st.sampled_from(["", "txn-9", "loader"]))
    @settings(max_examples=150, deadline=None)
    def test_record_roundtrip(self, op, source):
        log = LogManager()
        record = log.append(op, source=source)
        clone = record_from_spec(record_to_spec(record))
        assert clone.lsn == record.lsn
        assert clone.source == record.source
        assert clone.flags == record.flags
        assert clone.op.writeset == record.op.writeset
