"""Property tests: log files corrupted at any suffix stay loadable.

The tolerant loader (``load_log(..., repair_tail=True)``) must, for
*any* corruption of a serialized log file's suffix — truncation at an
arbitrary byte, or a flipped byte anywhere in the records region —
salvage a clean prefix: contiguous LSNs from 1, every surviving record
passing its checksum, and the analysis pass running cleanly over it.
"""

import os
import tempfile

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.db import Database
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.recovery.analysis_pass import analyze_log
from repro.wal.serialize import save_log

_TEXT_CACHE = {}


def log_file_text():
    """One deterministic serialized log (built once, reused per example)."""
    if "text" not in _TEXT_CACHE:
        db = Database(pages_per_partition=[16], policy="general")
        for step in range(12):
            db.execute(PhysicalWrite(PageId(0, step % 16), ("r", step)))
            if step % 5 == 4:
                db.execute(
                    PhysiologicalWrite(PageId(0, step % 16), "stamp", (step,))
                )
            if step == 6:
                db.checkpoint()
        with tempfile.NamedTemporaryFile(
            mode="w", suffix=".json", delete=False
        ) as handle:
            path = handle.name
        try:
            save_log(db.log, path)
            with open(path) as handle:
                _TEXT_CACHE["text"] = handle.read()
        finally:
            os.unlink(path)
        _TEXT_CACHE["record_count"] = len(db.log)
    return _TEXT_CACHE["text"], _TEXT_CACHE["record_count"]


def load_corrupted(text):
    from repro.wal.serialize import load_log

    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", delete=False
    ) as handle:
        handle.write(text)
        path = handle.name
    try:
        return load_log(path, repair_tail=True)
    finally:
        os.unlink(path)


def records_start(text):
    """First byte of record data: damage from here on is tail damage.

    Anything before this point is the file header; destroying it is
    total loss, not a corrupted suffix, and the loader rejects it."""
    return text.index('"records":[') + len('"records":[')


def assert_clean_prefix(log, original_count):
    assert 0 <= len(log) <= original_count
    assert log.damaged_records() == []
    lsns = [record.lsn for record in log.scan(1)] if len(log) else []
    assert lsns == list(range(1, len(log) + 1))
    result = analyze_log(log)
    assert result.redo_scan_start >= 1
    assert result.records_analyzed <= len(log)


class TestCorruptedSuffix:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncation_at_any_byte(self, data):
        text, count = log_file_text()
        cut = data.draw(
            st.integers(records_start(text), len(text) - 1), label="cut"
        )
        assert_clean_prefix(load_corrupted(text[:cut]), count)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_byte_flip_anywhere_in_records(self, data):
        text, count = log_file_text()
        pos = data.draw(
            st.integers(records_start(text), len(text) - 1), label="pos"
        )
        flip = data.draw(st.integers(1, 255), label="flip")
        corrupted = (
            text[:pos] + chr((ord(text[pos]) ^ flip) % 128) + text[pos + 1:]
        )
        assert_clean_prefix(load_corrupted(corrupted), count)

    def test_undamaged_file_keeps_every_record(self):
        text, count = log_file_text()
        log = load_corrupted(text)
        assert len(log) == count
        assert log.tail_repair_dropped == 0
