"""Property: point-in-time restore ≡ offline recovery from a full backup.

Twin databases execute the *same* operation sequence with backups taken
quiescently (everything installed first, so a sweep appends nothing and
the twins' logs stay LSN-identical):

* database **A** builds an archive chain — a base full plus incremental
  generations at batch boundaries — then keeps running past the cut;
* database **B** stops at the cut, takes an ordinary full backup there,
  fails its media, and runs plain offline ``media_recover``.

For every generation seal point ``cut``, ``A.restore_to_lsn(cut)`` must
produce a stable store byte-identical to B's — same pages, same values,
same page LSNs.  This pins the PITR path (chain prefix overlay + log
replay truncated at the target) to the simplest possible ground truth.
"""

import shutil
import tempfile

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.config import BackupConfig
from repro.db import Database
from repro.workloads import mixed_logical_workload

PAGES = 24

batches = st.lists(st.integers(1, 12), min_size=2, max_size=4)


def _run_ops(db, source, count):
    for _ in range(count):
        db.execute(next(source))
    db.checkpoint()


def _build_chain(seed, counts, backend="memory", data_dir=None):
    """Database A: one full + one incremental per remaining batch."""
    db = Database(pages_per_partition=[PAGES], policy="general",
                  backend=backend, data_dir=data_dir)
    source = mixed_logical_workload(db.layout, seed=seed, count=10**9)
    archive = db.attach_archive(BackupConfig(steps=4))
    _run_ops(db, source, counts[0])
    archive.run_full()
    for count in counts[1:]:
        _run_ops(db, source, count)
        archive.run_incremental()
    return db, archive, source


def _offline_truth(seed, counts, upto, cut, backend="memory",
                   data_dir=None):
    """Database B: same ops through batch ``upto``, full backup at the
    cut, media failure, offline recovery.  Returns its stable snapshot.
    """
    db = Database(pages_per_partition=[PAGES], policy="general",
                  backend=backend, data_dir=data_dir)
    source = mixed_logical_workload(db.layout, seed=seed, count=10**9)
    for count in counts[: upto + 1]:
        _run_ops(db, source, count)
    assert db.log.end_lsn == cut, "twin logs diverged; cut unreachable"
    db.start_backup(BackupConfig(steps=4))
    backup = db.run_backup(BackupConfig(pages_per_tick=PAGES * 2))
    db.media_failure()
    outcome = db.media_recover(backup=backup)
    assert outcome.ok
    snapshot = db.stable.snapshot()
    db.close()
    return snapshot


def _check_equivalence(seed, counts, tail, backend="memory",
                       base_dir=None):
    def fresh_dir():
        if backend != "file":
            return None
        return tempfile.mkdtemp(dir=base_dir)

    db, archive, source = _build_chain(seed, counts, backend=backend,
                                       data_dir=fresh_dir())
    cuts = [g.completion_lsn for g in archive.chain()]
    _run_ops(db, source, tail)  # history past every cut
    for index, cut in enumerate(cuts):
        truth = _offline_truth(seed, counts, index, cut, backend=backend,
                               data_dir=fresh_dir())
        db.media_failure()
        assert db.restore_to_lsn(cut).ok
        state = db.stable.snapshot()
        assert state.keys() == truth.keys()
        for pid in truth:
            assert state[pid].value == truth[pid].value, (cut, pid)
            assert state[pid].page_lsn == truth[pid].page_lsn, (cut, pid)
        # Roll forward so the next cut starts from live state again.
        db.crash()
        assert db.recover().ok
    db.close()


class TestPitrEquivalence:
    @given(st.integers(0, 2**16), batches, st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_memory_backend(self, seed, counts, tail):
        _check_equivalence(seed, counts, tail)

    @given(st.integers(0, 2**16), batches, st.integers(0, 10))
    @settings(max_examples=5, deadline=None)
    def test_file_backend(self, seed, counts, tail):
        base = tempfile.mkdtemp(prefix="pitr-prop-")
        try:
            _check_equivalence(seed, counts, tail, backend="file",
                               base_dir=base)
        finally:
            shutil.rmtree(base, ignore_errors=True)


def test_single_cut_smoke():
    """One deterministic pass, so a plain -k run exercises the path."""
    _check_equivalence(7, [6, 4, 5], 8)
