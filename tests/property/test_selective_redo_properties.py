"""Property-based tests for taint-excluding selective redo (§6.3)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.db import Database
from repro.ids import PageId
from repro.ops.logical import CopyOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.recovery.selective_redo import (
    compute_taint,
    expected_state_excluding,
)
from repro.wal.log_manager import LogManager

N_PAGES = 8


def pid(slot):
    return PageId(0, slot)


# Encoded actions: (who, what, a, b) — `who` chooses good vs bad source.
actions = st.tuples(
    st.booleans(),
    st.integers(0, 2),
    st.integers(0, N_PAGES - 1),
    st.integers(0, N_PAGES - 1),
)
schedules = st.lists(actions, min_size=1, max_size=40)


def decode(code, counter):
    is_bad, what, a, b = code
    source = "bad" if is_bad else "good"
    if what == 0:
        return PhysicalWrite(pid(a), ("w", counter)), source
    if what == 1:
        return PhysiologicalWrite(pid(a), "stamp", (counter,)), source
    if a == b:
        return PhysicalWrite(pid(a), ("w2", counter)), source
    return CopyOp(pid(a), pid(b)), source


class TestTaintClosureProperties:
    @given(schedules)
    @settings(max_examples=150, deadline=None)
    def test_no_kept_op_ever_reads_a_tainted_page(self, schedule):
        log = LogManager()
        records = []
        for i, code in enumerate(schedule):
            op, source = decode(code, i)
            records.append(log.append(op, source=source))
        analysis = compute_taint(
            records, lambda record: record.source == "bad"
        )
        excluded = analysis.excluded
        tainted = set()
        for record in records:
            if record.lsn in excluded:
                tainted |= record.op.writeset
            else:
                assert not (record.op.readset & tainted)
                tainted -= record.op.writeset

    @given(schedules)
    @settings(max_examples=100, deadline=None)
    def test_no_bad_source_means_nothing_excluded(self, schedule):
        log = LogManager()
        records = []
        for i, code in enumerate(schedule):
            op, _ = decode(code, i)
            records.append(log.append(op, source="good"))
        analysis = compute_taint(
            records, lambda record: record.source == "bad"
        )
        assert analysis.excluded == set()


class TestSelectiveRecoveryProperties:
    @given(schedules)
    @settings(max_examples=60, deadline=None)
    def test_recovered_state_equals_corruption_free_history(self, schedule):
        """After selective recovery the database equals the state produced
        by applying only the kept operations — for any schedule where the
        corruption happens after the backup."""
        db = Database(pages_per_partition=[N_PAGES], policy="general")
        # Pre-backup history is all clean.
        for slot in range(N_PAGES):
            db.execute(PhysicalWrite(pid(slot), ("base", slot)),
                       source="good")
        db.checkpoint()
        db.start_backup(steps=2)
        backup = db.run_backup(pages_per_tick=8)
        for i, code in enumerate(schedule):
            op, source = decode(code, i)
            db.execute(op, source=source)
        result = db.selective_recover("bad", backup=backup)
        assert result.outcome.ok, result.outcome.diffs[:3]
        expected = expected_state_excluding(db.log, result.analysis.excluded)
        for slot in range(N_PAGES):
            assert (
                db.stable.read_page(pid(slot)).value
                == expected.get(pid(slot))
            )
