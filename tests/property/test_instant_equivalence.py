"""Property: instant restore is byte-identical to offline media recovery.

Twin databases driven by the same seed produce the same log and the same
sealed backup; one recovers offline (``media_recover``), the other
through the lazy/eager instant-restore path with a shuffled mid-restore
read schedule racing the background pool.  The final stable snapshots,
the recovery-outcome state, the replay counters, and the quarantine sets
must all match — across workloads, fault (bitrot) schedules, and storage
backends.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.config import BackupConfig
from repro.db import Database
from repro.storage.page import PageVersion, rot_value
from repro.workloads import mixed_logical_workload


def _rot(backup, page_id):
    old = backup._versions[page_id]
    backup._versions[page_id] = PageVersion(
        rot_value(old.value), old.page_lsn
    )


def _build(seed, rot_sites, backend="memory", data_dir=None):
    """Deterministic workload + interleaved backup; optional backup rot.

    ``rot_sites`` is a tuple of copy-order indices to rot in the sealed
    image (empty = clean run).
    """
    db = Database(pages_per_partition=[12, 12, 12, 12], policy="general",
                  backend=backend, data_dir=data_dir)
    rng = random.Random(seed)
    source = mixed_logical_workload(db.layout, seed=seed, count=90)
    db.start_backup(BackupConfig(steps=4, batched=True))
    exhausted = False
    while db.backup_in_progress() or not exhausted:
        if db.backup_in_progress():
            db.backup_step(16)
        exhausted = True
        for _ in range(2):
            op = next(source, None)
            if op is None:
                break
            db.execute(op)
            exhausted = False
        db.install_some(2, rng)
    backup = db.latest_backup()
    order = backup.copy_order()
    for index in rot_sites:
        _rot(backup, order[index % len(order)])
    return db


def _key(state):
    return {pid: (v.value, v.page_lsn) for pid, v in state.items()}


def _assert_equivalent(seed, rot_sites, backend="memory",
                       tmp_path=None, executor="thread"):
    d1 = str(tmp_path / "offline") if tmp_path else None
    d2 = str(tmp_path / "instant") if tmp_path else None
    if d1:
        import os

        os.makedirs(d1, exist_ok=True)
        os.makedirs(d2, exist_ok=True)

    offline = _build(seed, rot_sites, backend, d1)
    offline.media_failure()
    expected_outcome = offline.media_recover()
    expected_snapshot = offline.stable.snapshot()

    instant = _build(seed, rot_sites, backend, d2)
    oracle = instant.oracle.state()
    initial = instant.initial_value
    instant.media_failure()
    instant.begin_instant_restore(workers=3, executor=executor)
    pages = [
        pid
        for p in range(instant.layout.num_partitions)
        for pid in instant.layout.pages_in_partition(p)
    ]
    order = list(pages)
    random.Random(seed + 99).shuffle(order)
    observed = {pid: instant.read(pid) for pid in order[::2]}
    outcome = instant.finish_instant_restore()

    assert instant.stable.snapshot() == expected_snapshot
    assert _key(outcome.state) == _key(expected_outcome.state)
    assert outcome.replayed == expected_outcome.replayed
    assert outcome.skipped == expected_outcome.skipped
    assert outcome.poisoned == expected_outcome.poisoned
    assert outcome.quarantined == expected_outcome.quarantined
    assert outcome.ok == expected_outcome.ok
    # Every mid-restore read saw exactly the recovered value.
    quarantined = set(outcome.quarantined)
    for pid, value in observed.items():
        want = initial if pid in quarantined else oracle.get(pid, initial)
        assert value == want, f"mid-restore read of {pid} saw {value!r}"
    offline.close()
    instant.close()


class TestInstantEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_clean_runs_equivalent(self, seed):
        _assert_equivalent(seed, ())

    @given(
        st.integers(0, 10_000),
        st.tuples(st.integers(0, 47)) | st.tuples(
            st.integers(0, 47), st.integers(0, 47)
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_rotted_backup_runs_equivalent(self, seed, rot_sites):
        """Quarantine-degrade path: same honest loss on both paths."""
        _assert_equivalent(seed, rot_sites)


class TestInstantEquivalenceFileBackend:
    @given(st.integers(0, 10_000))
    @settings(max_examples=5, deadline=None)
    def test_file_backend_equivalent(self, seed):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            _assert_equivalent(seed, (), backend="file",
                               tmp_path=Path(tmp))

    @given(st.integers(0, 10_000))
    @settings(max_examples=3, deadline=None)
    def test_file_backend_process_pool_equivalent(self, seed):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            _assert_equivalent(seed, (), backend="file",
                               tmp_path=Path(tmp), executor="process")
