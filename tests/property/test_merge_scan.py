"""Property-based tests: striping the WAL never changes what recovery sees.

The striped log's ``merge_scan`` must be indistinguishable from the
single-stream log fed the same appends: the same records, a valid
(dense, ascending) total order, and — the reproduction-critical
invariant — each object's records forming the same subsequence, pinned
to one stream.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ids import PageId
from repro.ops.identity import IdentityWrite
from repro.ops.physical import PhysicalWrite
from repro.wal.log_manager import LogManager
from repro.wal.multi_log import MultiLogManager

N_PARTS = 3
N_SLOTS = 12

# One append is (page code, value, identity?); encoding appends as data
# lets hypothesis shrink a failing striping schedule.
appends = st.lists(
    st.tuples(
        st.integers(0, N_PARTS * N_SLOTS - 1),
        st.integers(0, 99),
        st.booleans(),
    ),
    min_size=1,
    max_size=80,
)


def _op(code, value, identity):
    page = PageId(code // N_SLOTS, code % N_SLOTS)
    return (IdentityWrite if identity else PhysicalWrite)(page, (value,))


def _build(schedule, streams):
    if streams == 1:
        log = LogManager(auto_force=True)
    else:
        log = MultiLogManager(streams=streams, auto_force=True)
    for code, value, identity in schedule:
        log.append(_op(code, value, identity))
    return log


def _fingerprint(record):
    op = record.op
    return (record.lsn, type(op).__name__, op.target, op.value,
            record.flags.value)


@given(schedule=appends, streams=st.integers(2, 5))
@settings(max_examples=60, deadline=None)
def test_merge_scan_equals_single_stream_order(schedule, streams):
    single = _build(schedule, 1)
    striped = _build(schedule, streams)
    expected = [_fingerprint(r) for r in single.scan()]
    merged = [_fingerprint(r) for r in striped.merge_scan()]
    assert merged == expected


@given(schedule=appends, streams=st.integers(2, 5))
@settings(max_examples=60, deadline=None)
def test_merge_scan_is_a_valid_dense_total_order(schedule, streams):
    striped = _build(schedule, streams)
    lsns = [r.lsn for r in striped.merge_scan()]
    assert lsns == list(range(1, len(schedule) + 1))
    # Durable scans are a prefix of the same order.
    durable = [r.lsn for r in striped.durable_merge_scan()]
    assert durable == lsns[: len(durable)]


@given(schedule=appends, streams=st.integers(2, 5))
@settings(max_examples=60, deadline=None)
def test_each_objects_records_pin_to_one_stream_in_order(schedule, streams):
    striped = _build(schedule, streams)
    by_page = {}
    for record in striped.merge_scan():
        by_page.setdefault(record.op.target, []).append(record)
    for page, records in by_page.items():
        assert len({r.stream_id for r in records}) == 1, (
            f"records of {page} straddle streams"
        )
        seqs = [r.stream_seq for r in records]
        assert seqs == sorted(seqs)


@given(
    schedule=appends,
    streams=st.integers(2, 5),
    force_frac=st.floats(0.0, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_crash_cut_is_a_prefix_of_the_merged_order(
    schedule, streams, force_frac
):
    striped = MultiLogManager(streams=streams, auto_force=False,
                              group_commit=False)
    for code, value, identity in schedule:
        striped.append(_op(code, value, identity))
    target = int(len(schedule) * force_frac)
    if target:
        striped.force(up_to=target)
    frontier = striped.flushed_lsn
    striped.discard_unflushed()
    assert [r.lsn for r in striped.merge_scan()] == list(
        range(1, frontier + 1)
    )
    # Survivors per stream are suffix-free cuts: every stream's records
    # stay ascending and at or below the frontier.
    for stream in striped.streams:
        assert all(r.lsn <= frontier for r in stream.records)
