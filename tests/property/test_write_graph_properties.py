"""Property-based tests (hypothesis) for the write-graph machinery."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ids import PageId
from repro.ops.identity import IdentityWrite
from repro.ops.logical import CopyOp, GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.recovery.installation_graph import InstallationGraph
from repro.recovery.refined_write_graph import DynamicWriteGraph
from repro.recovery.write_graph import (
    build_intersecting_writes_graph,
    topological_flush_order,
)
from repro.wal.log_manager import LogManager

N_PAGES = 8


def pid(slot):
    return PageId(0, slot)


slots = st.integers(min_value=0, max_value=N_PAGES - 1)


@st.composite
def operations(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return PhysicalWrite(pid(draw(slots)), draw(st.integers(0, 99)))
    if kind == 1:
        return PhysiologicalWrite(pid(draw(slots)), "increment")
    if kind == 2:
        src = draw(slots)
        dst = draw(slots.filter(lambda s: s != src))
        return CopyOp(pid(src), pid(dst))
    if kind == 3:
        return IdentityWrite(pid(draw(slots)), draw(st.integers(0, 99)))
    reads = draw(st.sets(slots, min_size=1, max_size=3))
    writes = draw(st.sets(slots, min_size=1, max_size=2))
    return GeneralLogicalOp(
        [pid(s) for s in reads], [pid(s) for s in writes], "concat_sorted"
    )


op_sequences = st.lists(operations(), min_size=1, max_size=40)


def logged(ops):
    log = LogManager()
    return [log.append(op) for op in ops]


class TestDynamicGraphInvariants:
    @given(op_sequences)
    @settings(max_examples=150, deadline=None)
    def test_always_acyclic_with_disjoint_vars(self, ops):
        graph = DynamicWriteGraph()
        for record in logged(ops):
            graph.add_operation(record)
            graph.check_acyclic()
            assert graph.vars_are_disjoint()

    @given(op_sequences)
    @settings(max_examples=100, deadline=None)
    def test_full_drain_possible(self, ops):
        """The graph can always be emptied in write-graph order."""
        graph = DynamicWriteGraph()
        for record in logged(ops):
            graph.add_operation(record)
        while len(graph):
            installable = graph.installable_nodes()
            assert installable, "acyclic graph must have a source node"
            graph.install_node(installable[0])

    @given(op_sequences)
    @settings(max_examples=100, deadline=None)
    def test_every_written_page_is_held(self, ops):
        graph = DynamicWriteGraph()
        written = set()
        for record in logged(ops):
            graph.add_operation(record)
            written |= record.op.writeset
        held = set()
        for node in graph.nodes():
            held |= node.vars
        # Pages removed from vars by blind writes are re-held by the
        # blind node, so every written page has a holder.
        assert written == held


class TestStaticGraphs:
    @given(op_sequences)
    @settings(max_examples=100, deadline=None)
    def test_w_is_acyclic_with_topological_order(self, ops):
        records = logged(ops)
        nodes = build_intersecting_writes_graph(records)
        order = topological_flush_order(nodes)
        assert len(order) == len(nodes)
        all_ops = set()
        for node in nodes:
            all_ops |= node.ops
        assert all_ops == {r.lsn for r in records}

    @given(op_sequences)
    @settings(max_examples=100, deadline=None)
    def test_install_in_flush_order_is_installation_prefix(self, ops):
        """Flushing W's nodes in topological order installs operations in
        installation-graph prefix order — the core theorem hookup."""
        records = logged(ops)
        graph = InstallationGraph(records)
        nodes = build_intersecting_writes_graph(records, graph)
        installed = set()
        for node in topological_flush_order(nodes):
            installed |= node.ops
            assert graph.is_prefix(installed), (
                f"prefix violated after node {node.node_id}"
            )

    @given(op_sequences)
    @settings(max_examples=100, deadline=None)
    def test_dynamic_drain_order_is_installation_prefix(self, ops):
        """Same property for the dynamic rW graph, including blind
        writes.  Identity writes are excluded: rW deliberately orders
        them independently (they change no value, so the raw
        installation-graph edges into them are vacuous)."""
        ops = [op for op in ops if not isinstance(op, IdentityWrite)]
        if not ops:
            return
        records = logged(ops)
        graph = InstallationGraph(records)
        dynamic = DynamicWriteGraph()
        for record in records:
            dynamic.add_operation(record)
        installed = set()
        while len(dynamic):
            node = dynamic.installable_nodes()[0]
            installed |= set(node.op_lsns)
            dynamic.install_node(node)
            assert graph.is_prefix(installed)
