"""Property-based tests for progress tracking and the analysis model."""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.core import analysis
from repro.core.progress import BackupRegion, PartitionProgress
from repro.storage.layout import Layout


class TestProgressProperties:
    @given(
        st.integers(2, 200),
        st.integers(1, 16),
        st.integers(0, 199),
    )
    @settings(max_examples=200, deadline=None)
    def test_regions_partition_positions_at_every_step(
        self, size, steps, probe
    ):
        assume(probe < size)
        layout = Layout([size])
        progress = PartitionProgress(0, size)
        boundaries = layout.step_boundaries(0, steps)
        progress.begin(boundaries[0])
        seen_regions = []
        for boundary in boundaries[1:] + [None]:
            region = progress.classify(probe)
            seen_regions.append(region)
            assert 0 <= progress.done <= progress.pending <= size
            if boundary is not None:
                progress.advance(boundary)
        progress.finish()
        # A position's region only ever moves PEND -> DOUBT -> DONE.
        order = {
            BackupRegion.PEND: 0,
            BackupRegion.DOUBT: 1,
            BackupRegion.DONE: 2,
        }
        ranks = [order[r] for r in seen_regions]
        assert ranks == sorted(ranks)

    @given(st.integers(2, 200), st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_doubt_region_sizes_roughly_equal(self, size, steps):
        """Section 5 models N equal steps; boundaries should divide the
        partition into near-equal pieces."""
        layout = Layout([size])
        boundaries = layout.step_boundaries(0, steps)
        widths = [b - a for a, b in zip([0] + boundaries, boundaries)]
        if steps <= size:
            assert max(widths) - min(widths) <= 1 + size // steps // 8


class TestAnalysisProperties:
    @given(st.integers(1, 512))
    def test_curves_bounded_and_ordered(self, steps):
        general = analysis.general_extra_logging(steps)
        tree = analysis.tree_extra_logging(steps)
        assert 0.0 <= tree <= general <= 1.0
        assert general >= analysis.general_asymptote()
        assert tree >= analysis.tree_asymptote() - 1e-12

    @given(st.integers(1, 256))
    def test_more_steps_never_hurt(self, steps):
        assert analysis.general_extra_logging(
            steps + 1
        ) <= analysis.general_extra_logging(steps)
        assert analysis.tree_extra_logging(
            steps + 1
        ) <= analysis.tree_extra_logging(steps)

    @given(st.integers(1, 64))
    def test_step_probabilities_are_probabilities(self, steps):
        for m in range(1, steps + 1):
            assert 0.0 <= analysis.general_step_probability(m, steps) <= 1.0
            # Tree step probability can dip microscopically below zero
            # only through the -1/(2N^2) correction at m=1, N=1; the
            # formula itself stays within [0, 1] for all valid (m, N).
            assert -1e-9 <= analysis.tree_step_probability(m, steps) <= 1.0
