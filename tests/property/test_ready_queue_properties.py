"""Property-based tests (hypothesis) for the incremental ready queue.

The dynamic write graph maintains ``_ready`` (live nodes with no live
predecessors) and ``_ready_empty`` (the ready subset with empty ``vars``)
incrementally across every mutation — edge additions, merges, blind-write
var removal, installs.  These tests recompute both sets by brute force
after every step and require exact agreement.

The brute-force comparator deliberately avoids ``graph.predecessors()``:
that method compacts ``preds`` and *repairs* the ready queue as a side
effect, which would mask incremental-maintenance bugs.  It walks the
alias map read-only instead.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.db import Database
from repro.ids import PageId
from repro.ops.identity import IdentityWrite
from repro.ops.logical import CopyOp, GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.recovery.refined_write_graph import DynamicWriteGraph
from repro.wal.log_manager import LogManager

N_PAGES = 8


def pid(slot):
    return PageId(0, slot)


slots = st.integers(min_value=0, max_value=N_PAGES - 1)


@st.composite
def operations(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return PhysicalWrite(pid(draw(slots)), draw(st.integers(0, 99)))
    if kind == 1:
        return PhysiologicalWrite(pid(draw(slots)), "increment")
    if kind == 2:
        src = draw(slots)
        dst = draw(slots.filter(lambda s: s != src))
        return CopyOp(pid(src), pid(dst))
    if kind == 3:
        return IdentityWrite(pid(draw(slots)), draw(st.integers(0, 99)))
    reads = draw(st.sets(slots, min_size=1, max_size=3))
    writes = draw(st.sets(slots, min_size=1, max_size=2))
    return GeneralLogicalOp(
        [pid(s) for s in reads], [pid(s) for s in writes], "concat_sorted"
    )


# A script step: (action roll, operation).  The roll decides between
# adding the operation and installing a ready node (when one exists).
scripts = st.lists(
    st.tuples(st.integers(0, 4), operations()), min_size=1, max_size=50
)


def brute_force_ready(graph):
    """Recompute (ready, ready_empty) from first principles.

    A node is ready iff no *live* node is among its predecessors after
    resolving merged aliases.  The alias map is walked without path
    compression and ``preds`` is never mutated, so this cannot repair
    the incremental state it is checking.
    """
    alias = graph._alias
    nodes = graph._nodes
    ready, ready_empty = set(), set()
    for node_id, node in nodes.items():
        has_live_pred = False
        for pred in node.preds:
            current = pred
            while current in alias:
                current = alias[current]
            if current in nodes and current != node_id:
                has_live_pred = True
                break
        if not has_live_pred:
            ready.add(node_id)
            if not node.vars:
                ready_empty.add(node_id)
    return ready, ready_empty


def assert_queue_consistent(graph):
    expected_ready, expected_empty = brute_force_ready(graph)
    assert graph._ready == expected_ready
    assert graph._ready_empty == expected_empty
    listed = graph.installable_nodes()
    assert {n.node_id for n in listed} == expected_ready
    first_lsns = [n.first_lsn for n in listed]
    assert first_lsns == sorted(first_lsns)


class TestReadyQueueMatchesBruteForce:
    @given(scripts)
    @settings(max_examples=150, deadline=None)
    def test_graph_level_adds_and_installs(self, script):
        graph = DynamicWriteGraph()
        log = LogManager()
        for roll, op in script:
            if roll == 0 and graph._ready:
                graph.install_node(graph.installable_nodes()[0])
            else:
                graph.add_operation(log.append(op))
            assert_queue_consistent(graph)
        # Drain completely: the queue must stay exact to the last node.
        while len(graph):
            nodes = graph.installable_nodes()
            assert nodes, "acyclic graph must have a ready node"
            graph.install_node(nodes[0])
            assert_queue_consistent(graph)
        assert graph._ready == set() and graph._ready_empty == set()

    @given(scripts, st.integers(0, 2**16))
    @settings(max_examples=75, deadline=None)
    def test_database_level_mixed_workload(self, script, seed):
        """The queue stays exact through the full cache-manager path:
        executes, partial installs, checkpoints, and crashes."""
        db = Database(pages_per_partition=[N_PAGES], policy="general")
        rng = random.Random(seed)
        for roll, op in script:
            if roll == 0:
                db.install_some(2, rng)
            elif roll == 1 and rng.random() < 0.3:
                db.crash()
                db.recover()
            else:
                db.execute(op)
            assert_queue_consistent(db.cm.graph)
        db.checkpoint()
        assert_queue_consistent(db.cm.graph)
        assert len(db.cm.graph) == 0
