"""Property-based tests: crash recoverability under random schedules.

The central safety property: whatever operations run, however the cache
manager's flushing is interleaved, a crash at any point leaves S + log
able to reproduce the oracle state.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.db import Database
from repro.ids import PageId

N_PAGES = 10


def pid(slot):
    return PageId(0, slot)


# A schedule is a list of small integers decoded into actions; encoding
# the randomness as data lets hypothesis shrink failing schedules.
schedules = st.lists(st.integers(0, 999), min_size=1, max_size=60)


def run_schedule(schedule, policy="general"):
    """Decode and run a schedule; returns the database just after the
    last action (no crash yet)."""
    db = Database(pages_per_partition=[N_PAGES], policy=policy)
    from repro.ops.logical import CopyOp, GeneralLogicalOp
    from repro.ops.physical import PhysicalWrite
    from repro.ops.physiological import PhysiologicalWrite

    rng = random.Random(0)
    for code in schedule:
        action = code % 6
        a, b = (code // 6) % N_PAGES, (code // 60) % N_PAGES
        if action == 0:
            db.execute(PhysicalWrite(pid(a), code))
        elif action == 1:
            db.execute(PhysiologicalWrite(pid(a), "stamp", (code,)))
        elif action == 2 and a != b:
            db.execute(CopyOp(pid(a), pid(b)))
        elif action == 3 and a != b:
            db.execute(
                GeneralLogicalOp(
                    [pid(a)], [pid(b), pid((b + 1) % N_PAGES)], "copy_value"
                )
            )
        elif action == 4:
            db.install_some(1, rng)
        else:
            db.flush_page(pid(a))
    return db


class TestCrashRecoverability:
    @given(schedules)
    @settings(max_examples=120, deadline=None)
    def test_crash_after_any_schedule_recovers(self, schedule):
        db = run_schedule(schedule)
        db.crash()
        outcome = db.recover()
        assert outcome.ok, outcome.diffs[:3]

    @given(schedules)
    @settings(max_examples=60, deadline=None)
    def test_stable_state_is_order_violation_free(self, schedule):
        """The structural invariant behind recoverability: at no point
        does S contain a later writer's update while an earlier reader's
        uncovered effects are missing."""
        from repro.recovery.explain import find_order_violations

        db = run_schedule(schedule)
        violations = find_order_violations(
            db.stable.snapshot(), list(db.log.scan())
        )
        assert violations == [], violations[:2]

    @given(schedules)
    @settings(max_examples=60, deadline=None)
    def test_replay_from_lsn_one_equivalent(self, schedule):
        """Replaying from LSN 1 must agree with replaying from the
        truncation point (the LSN redo test skips installed work)."""
        from repro.recovery.crash_recovery import run_crash_recovery

        db = run_schedule(schedule)
        db.crash()
        full = run_crash_recovery(
            db.stable, db.log, scan_start_lsn=1,
            oracle=db.oracle.state(), apply_to_stable=False,
        )
        assert full.ok, full.diffs[:3]


class TestBackupRecoverability:
    @given(schedules, st.integers(1, 4), st.integers(0, 30))
    @settings(max_examples=80, deadline=None)
    def test_media_recovery_after_any_interleaving(
        self, schedule, steps, backup_offset
    ):
        """Start a backup part-way through a random schedule, finish it
        while the rest of the schedule runs: B + media log must recover."""
        db = Database(pages_per_partition=[N_PAGES], policy="general")
        from repro.ops.logical import CopyOp
        from repro.ops.physical import PhysicalWrite
        from repro.ops.physiological import PhysiologicalWrite

        rng = random.Random(0)
        started = False
        for i, code in enumerate(schedule):
            if not started and i >= backup_offset:
                db.start_backup(steps=steps)
                started = True
            action = code % 5
            a, b = (code // 5) % N_PAGES, (code // 50) % N_PAGES
            if action == 0:
                db.execute(PhysicalWrite(pid(a), code))
            elif action == 1:
                db.execute(PhysiologicalWrite(pid(a), "stamp", (code,)))
            elif action == 2 and a != b:
                db.execute(CopyOp(pid(a), pid(b)))
            elif action == 3:
                db.install_some(1, rng)
            elif started and db.backup_in_progress():
                db.backup_step(1)
        if not started:
            db.start_backup(steps=steps)
        while db.backup_in_progress():
            db.backup_step(4)
        db.media_failure()
        outcome = db.media_recover()
        assert outcome.ok, outcome.diffs[:3]
