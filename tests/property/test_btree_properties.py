"""Property-based tests: B-tree vs a dict model, with recovery."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.btree import BTree
from repro.db import Database

keys = st.integers(0, 500)
key_value_lists = st.lists(
    st.tuples(keys, st.integers(0, 10_000)), min_size=0, max_size=80
)


def build(pairs, order=4, logging="tree"):
    db = Database(pages_per_partition=[256], policy="tree")
    tree = BTree(db, order=order, logging=logging).create()
    model = {}
    for key, value in pairs:
        tree.insert(key, value)
        model[key] = value
    return db, tree, model


class TestModelConformance:
    @given(key_value_lists)
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_model(self, pairs):
        _, tree, model = build(pairs)
        assert dict(tree.items()) == model
        assert tree.check_invariants() == len(model)
        for key, value in model.items():
            assert tree.search(key) == value

    @given(key_value_lists, st.sampled_from([2, 3, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_any_order_parameter(self, pairs, order):
        _, tree, model = build(pairs, order=order)
        assert dict(tree.items()) == model

    @given(key_value_lists)
    @settings(max_examples=30, deadline=None)
    def test_logging_modes_agree(self, pairs):
        _, tree_logical, _ = build(pairs, logging="tree")
        _, tree_page, _ = build(pairs, logging="page")
        assert list(tree_logical.items()) == list(tree_page.items())


class TestChurnConformance:
    @given(
        st.lists(
            st.tuples(st.booleans(), keys, st.integers(0, 1000)),
            min_size=0,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_insert_delete_churn_matches_model(self, actions):
        db = Database(pages_per_partition=[256], policy="general")
        tree = BTree(db, order=4, logging="tree").create()
        model = {}
        for is_delete, key, value in actions:
            if is_delete:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
            else:
                tree.insert(key, value)
                model[key] = value
        assert dict(tree.items()) == model
        assert tree.check_invariants() == len(model)

    @given(
        st.lists(
            st.tuples(st.booleans(), keys, st.integers(0, 1000)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_churn_crash_recovery(self, actions):
        db = Database(pages_per_partition=[256], policy="general")
        tree = BTree(db, order=4, logging="tree").create()
        model = {}
        for is_delete, key, value in actions:
            if is_delete:
                if tree.delete(key):
                    del model[key]
            else:
                tree.insert(key, value)
                model[key] = value
        db.crash()
        assert db.recover().ok
        reopened = BTree.attach(db, order=4)
        assert dict(reopened.items()) == model


class TestRecoveryConformance:
    @given(key_value_lists)
    @settings(max_examples=40, deadline=None)
    def test_crash_recovery_preserves_tree(self, pairs):
        db, tree, model = build(pairs)
        db.crash()
        assert db.recover().ok
        reopened = BTree.attach(db, order=4)
        assert dict(reopened.items()) == model
        assert reopened.check_invariants() == len(model)

    @given(key_value_lists, st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_online_backup_media_recovery(self, pairs, backup_at):
        """Take a backup mid-insert-stream; media recovery must yield
        the final tree."""
        db = Database(pages_per_partition=[256], policy="tree")
        tree = BTree(db, order=4, logging="tree").create()
        model = {}
        started = sealed = False
        for i, (key, value) in enumerate(pairs):
            if not started and i >= backup_at:
                db.start_backup(steps=4)
                started = True
            tree.insert(key, value)
            model[key] = value
            if started and db.backup_in_progress():
                db.backup_step(8)
        if not started:
            db.start_backup(steps=4)
        while db.backup_in_progress():
            db.backup_step(16)
        db.media_failure()
        outcome = db.media_recover()
        assert outcome.ok, outcome.diffs[:3]
        reopened = BTree.attach(db, order=4)
        assert dict(reopened.items()) == model
