"""Property: parallel redo is byte-identical to serial redo.

Two layers of the same equivalence claim.  At the replayer layer, a
seeded generator builds an adversarial log slice — physical writes,
physiological transforms, cross-partition logical ops with wide
readsets, and ops that raise mid-replay (poison) — and the slice is
replayed by the serial :class:`RedoReplayer` and by
:class:`ParallelRedoReplayer` at several widths over identical starting
states; the final page versions, every :class:`ReplayStats` counter
(including ``poisoned`` page *order*), and the memoized effect slots
must match exactly.  At the database layer, twin databases driven by
the same workload crash (or lose their medium) and recover with
``redo_workers=1`` versus ``redo_workers=4``; stable snapshots and
recovery outcomes must match on both the memory and file backends.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.config import BackupConfig
from repro.db import Database
from repro.ids import NULL_LSN, PageId
from repro.ops.logical import GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.recovery.parallel_redo import ParallelRedoReplayer, make_replayer
from repro.recovery.redo import RedoReplayer
from repro.sim.metrics import Metrics
from repro.storage.page import PageVersion
from repro.wal.records import LogRecord
from repro.workloads import mixed_logical_workload

PARTITIONS = 4
SLOTS = 6


class ExplodingWrite(PhysiologicalWrite):
    """A transform that always raises: exercises the poison path."""

    def compute(self, reads):
        raise RuntimeError("boom")


def _page(rng):
    return PageId(rng.randrange(PARTITIONS), rng.randrange(SLOTS))


def _make_op(rng):
    roll = rng.random()
    if roll < 0.35:
        return PhysicalWrite(_page(rng), rng.randrange(1000))
    if roll < 0.65:
        return PhysiologicalWrite(_page(rng), "increment", (rng.randrange(9),))
    if roll < 0.72:
        return ExplodingWrite(_page(rng), "increment", (1,))
    # Cross-partition logical op: reads span partitions, and the
    # writeset occasionally does too (coordinator lane).
    reads = {_page(rng) for _ in range(rng.randrange(1, 4))}
    writes = {_page(rng) for _ in range(1 if rng.random() < 0.7 else 2)}
    return GeneralLogicalOp(
        reads=reads, writes=writes, transform="concat_sorted",
        per_target=False,
    )


def _make_log(seed, count=120):
    """Seeded log slice plus a starting state with mixed page LSNs.

    Some pages start ahead of the log (skip path), some mid-slice
    (partial replays for multi-target ops), most behind it.
    """
    rng = random.Random(seed)
    records = [LogRecord(lsn, _make_op(rng)) for lsn in range(1, count + 1)]
    state = {}
    for p in range(PARTITIONS):
        for s in range(SLOTS):
            roll = rng.random()
            if roll < 0.5:
                lsn = NULL_LSN
            elif roll < 0.8:
                lsn = rng.randrange(1, count + 1)
            else:
                lsn = count + 10  # ahead of every record: always skipped
            state[PageId(p, s)] = PageVersion(0, lsn)
    return records, state


def _key(state):
    # POISON is a singleton and transforms are deterministic, so plain
    # equality over (value, page_lsn) is exact.
    return {pid: (v.value, v.page_lsn) for pid, v in state.items()}


def _stats_tuple(stats):
    return (
        stats.records_seen,
        stats.ops_replayed,
        stats.ops_skipped,
        stats.partial_replays,
        list(stats.poisoned),
    )


class TestReplayerEquivalence:
    @given(st.integers(0, 100_000), st.sampled_from([2, 3, 4]))
    @settings(max_examples=40, deadline=None)
    def test_parallel_matches_serial(self, seed, workers):
        records, base = _make_log(seed)
        serial_state = dict(base)
        serial_stats = RedoReplayer(initial_value=0).replay(
            records, serial_state
        )
        parallel_state = dict(base)
        parallel_stats = ParallelRedoReplayer(
            initial_value=0, workers=workers
        ).replay(records, parallel_state)
        assert _key(parallel_state) == _key(serial_state)
        assert _stats_tuple(parallel_stats) == _stats_tuple(serial_stats)

    @given(st.integers(0, 100_000))
    @settings(max_examples=15, deadline=None)
    def test_effects_match_installed_versions(self, seed):
        records, base = _make_log(seed, count=60)
        state = dict(base)
        replayer = ParallelRedoReplayer(initial_value=0, workers=3)
        stats, effects = replayer.replay_with_effects(records, state)
        assert len(effects) == len(records)
        replayed = sum(1 for e in effects if e is not None)
        assert replayed == stats.ops_replayed
        # Every page's final version is the last effect that wrote it.
        last = {}
        for effect in effects:
            if effect:
                last.update(effect)
        for page, version in last.items():
            assert state[page] is version

    def test_make_replayer_dispatch(self):
        assert isinstance(make_replayer(redo_workers=1), RedoReplayer)
        parallel = make_replayer(redo_workers=3)
        assert isinstance(parallel, ParallelRedoReplayer)
        assert parallel.workers == 3
        try:
            ParallelRedoReplayer(workers=1)
        except ValueError:
            pass
        else:
            raise AssertionError("workers=1 must be rejected")

    def test_metrics_split_fast_path_vs_coordinated(self):
        records, base = _make_log(7, count=80)
        metrics = Metrics()
        stats = ParallelRedoReplayer(
            initial_value=0, workers=2, metrics=metrics
        ).replay(records, dict(base))
        total = metrics.redo_ops_fast_path + metrics.redo_ops_coordinated
        assert total == stats.ops_replayed
        # The generator always emits some cross-partition ops.
        assert metrics.redo_ops_coordinated > 0


def _build(seed, backend="memory", data_dir=None, redo_workers=1):
    db = Database(
        pages_per_partition=[10, 10, 10], policy="general",
        backend=backend, data_dir=data_dir, redo_workers=redo_workers,
    )
    rng = random.Random(seed)
    source = mixed_logical_workload(db.layout, seed=seed, count=70)
    db.start_backup(BackupConfig(steps=4, batched=True))
    exhausted = False
    while db.backup_in_progress() or not exhausted:
        if db.backup_in_progress():
            db.backup_step(16)
        exhausted = True
        for _ in range(2):
            op = next(source, None)
            if op is None:
                break
            db.execute(op)
            exhausted = False
        db.install_some(2, rng)
    return db


def _assert_db_equivalent(seed, mode, backend="memory", tmp_path=None):
    dirs = [None, None]
    if tmp_path is not None:
        import os

        dirs = [str(tmp_path / "serial"), str(tmp_path / "parallel")]
        for d in dirs:
            os.makedirs(d, exist_ok=True)
    serial = _build(seed, backend, dirs[0], redo_workers=1)
    parallel = _build(seed, backend, dirs[1], redo_workers=4)
    outcomes = []
    for db in (serial, parallel):
        if mode == "crash":
            db.crash()
            outcomes.append(db.recover())
        else:
            db.media_failure()
            outcomes.append(db.media_recover())
    want, got = outcomes
    assert parallel.stable.snapshot() == serial.stable.snapshot()
    assert _key(got.state) == _key(want.state)
    assert got.replayed == want.replayed
    assert got.skipped == want.skipped
    assert got.poisoned == want.poisoned
    assert got.ok == want.ok
    # Every replayed op was counted on exactly one lane.
    lanes = (
        parallel.metrics.redo_ops_fast_path
        + parallel.metrics.redo_ops_coordinated
    )
    assert lanes == got.replayed
    serial.close()
    parallel.close()


class TestDatabaseEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_crash_recovery_equivalent(self, seed):
        _assert_db_equivalent(seed, "crash")

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_media_recovery_equivalent(self, seed):
        _assert_db_equivalent(seed, "media")

    @given(st.integers(0, 10_000))
    @settings(max_examples=4, deadline=None)
    def test_file_backend_equivalent(self, seed):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            _assert_db_equivalent(
                seed, "crash", backend="file", tmp_path=Path(tmp)
            )
