"""Unit tests for the B+-tree."""

import random

import pytest

from repro.btree import BTree
from repro.btree.ops import (
    BTreeInsert,
    BTreeSplitMove,
    BTreeSplitRemove,
    node_records,
    node_value,
)
from repro.db import Database
from repro.errors import OperationError, ReproError
from repro.ids import PageId


@pytest.fixture
def db():
    return Database(pages_per_partition=[128], policy="tree")


@pytest.fixture
def tree(db):
    return BTree(db, order=4, logging="tree").create()


class TestBasics:
    def test_empty_tree(self, tree):
        assert tree.search(1) is None
        assert list(tree.items()) == []
        assert tree.height() == 1
        assert tree.check_invariants() == 0

    def test_insert_and_search(self, tree):
        tree.insert(5, "five")
        assert tree.search(5) == "five"
        assert tree.search(6) is None

    def test_overwrite(self, tree):
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.search(5) == "b"
        assert tree.check_invariants() == 1

    def test_items_sorted(self, tree):
        for key in (5, 1, 3, 2, 4):
            tree.insert(key, key * 10)
        assert [k for k, _ in tree.items()] == [1, 2, 3, 4, 5]


class TestSplits:
    def test_leaf_split_grows_height(self, tree):
        for key in range(6):
            tree.insert(key, key)
        assert tree.height() == 2
        assert tree.check_invariants() == 6

    def test_many_keys_random_order(self, db):
        tree = BTree(db, order=4, logging="tree").create()
        rng = random.Random(3)
        keys = list(range(150))
        rng.shuffle(keys)
        for key in keys:
            tree.insert(key, ("p", key))
        assert tree.check_invariants() == 150
        for key in (0, 42, 149):
            assert tree.search(key) == ("p", key)

    def test_sequential_and_reverse_insertion(self, db):
        for order_keys in (range(60), reversed(range(60))):
            tree = BTree(
                db, first_slot=0, order=4, logging="tree"
            ).create()
            for key in order_keys:
                tree.insert(key, key)
            assert tree.check_invariants() == 60
            db = Database(pages_per_partition=[128], policy="tree")

    def test_page_logging_mode_equivalent(self):
        results = {}
        for mode in ("tree", "page"):
            db = Database(pages_per_partition=[128], policy="page")
            tree = BTree(db, order=4, logging=mode).create()
            rng = random.Random(9)
            keys = list(range(100))
            rng.shuffle(keys)
            for key in keys:
                tree.insert(key, key)
            results[mode] = list(tree.items())
        assert results["tree"] == results["page"]

    def test_capacity_exhaustion(self):
        db = Database(pages_per_partition=[8], policy="tree")
        tree = BTree(db, order=2, logging="tree").create()
        with pytest.raises(OperationError):
            for key in range(100):
                tree.insert(key, key)


class TestAttach:
    def test_attach_existing(self, db, tree):
        tree.insert(1, "one")
        reopened = BTree.attach(db, order=4)
        assert reopened.search(1) == "one"

    def test_attach_unformatted_rejected(self, db):
        with pytest.raises(ReproError):
            BTree.attach(db, partition=0, first_slot=50)

    def test_bad_logging_mode_rejected(self, db):
        with pytest.raises(ReproError):
            BTree(db, logging="quantum")


class TestBTreeOps:
    def test_split_move_on_tagged_values(self):
        old, new = PageId(0, 1), PageId(0, 2)
        value = node_value("leaf", ((1, "a"), (2, "b"), (3, "c")))
        op = BTreeSplitMove(old, 2, new)
        result = op.apply({old: value})
        assert result[new] == ("leaf", ((3, "c"),))

    def test_split_remove_keeps_low(self):
        old = PageId(0, 1)
        value = node_value("leaf", ((1, "a"), (2, "b"), (3, "c")))
        op = BTreeSplitRemove(old, 2)
        assert op.apply({old: value})[old] == ("leaf", ((1, "a"), (2, "b")))

    def test_insert_op(self):
        page = PageId(0, 1)
        op = BTreeInsert(page, 2, "b")
        result = op.apply({page: node_value("leaf", ((1, "a"),))})
        assert result[page] == ("leaf", ((1, "a"), (2, "b")))

    def test_node_records_defensive(self):
        assert node_records("garbage") == ()
        assert node_records(("leaf", ((1, "a"),))) == ((1, "a"),)

    def test_split_logging_sizes(self):
        """The tree-class split logs no record data; the page-oriented
        image grows with the page contents."""
        old, new = PageId(0, 1), PageId(0, 2)
        move = BTreeSplitMove(old, 2, new)
        assert move.log_record_size() < 64
