"""Unit tests for the intersecting-writes write graph W (section 2.4)."""

from repro.ids import PageId
from repro.ops.logical import CopyOp, GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.recovery.write_graph import (
    build_intersecting_writes_graph,
    topological_flush_order,
)
from repro.wal.log_manager import LogManager


def pid(slot):
    return PageId(0, slot)


def log_ops(*ops):
    log = LogManager()
    return [log.append(op) for op in ops]


def node_holding(nodes, page):
    for node in nodes:
        if page in node.vars:
            return node
    raise AssertionError(f"no node holds {page!r}")


class TestFirstCollapse:
    def test_page_oriented_ops_get_degenerate_graph(self):
        """Page-oriented logs: every node has one var and no edges."""
        records = log_ops(
            PhysicalWrite(pid(0), 1),
            PhysiologicalWrite(pid(1), "increment"),
            PhysicalWrite(pid(2), 2),
        )
        nodes = build_intersecting_writes_graph(records)
        assert len(nodes) == 3
        assert all(len(n.vars) == 1 for n in nodes)
        assert all(not n.preds and not n.succs for n in nodes)

    def test_intersecting_writes_merge(self):
        records = log_ops(
            PhysicalWrite(pid(0), 1),
            PhysiologicalWrite(pid(0), "increment"),
        )
        nodes = build_intersecting_writes_graph(records)
        assert len(nodes) == 1
        assert nodes[0].ops == {1, 2}

    def test_multi_object_op_creates_multi_var_node(self):
        records = log_ops(
            GeneralLogicalOp([pid(0)], [pid(1), pid(2)], "copy_value")
        )
        nodes = build_intersecting_writes_graph(records)
        assert len(nodes) == 1
        assert nodes[0].vars == {pid(1), pid(2)}


class TestEdgesAndSecondCollapse:
    def test_copy_dependency_edge(self):
        records = log_ops(
            CopyOp(pid(0), pid(1)),
            PhysiologicalWrite(pid(0), "increment"),
        )
        nodes = build_intersecting_writes_graph(records)
        src = node_holding(nodes, pid(1))
        dst = node_holding(nodes, pid(0))
        assert dst.node_id in src.succs
        assert src.node_id in dst.preds

    def test_two_copies_are_not_a_cycle(self):
        """copy(X,Y); copy(Y,X) has only ONE installation edge — the
        second conflict is write-read, which is not an edge (§2.2)."""
        records = log_ops(
            CopyOp(pid(0), pid(1)),
            CopyOp(pid(1), pid(0)),
        )
        nodes = build_intersecting_writes_graph(records)
        assert len(nodes) == 2
        src = node_holding(nodes, pid(1))
        dst = node_holding(nodes, pid(0))
        assert dst.node_id in src.succs

    def test_cycle_collapsed_into_atomic_flush_set(self):
        """A genuine cycle: copy(X,Y); copy(Y,X); stamp(Y).

        Edges: op1→op2 (op1 read X, op2 wrote X) and op2→op3 (op2 read
        Y, op3 wrote Y); op3 shares a write set with op1, closing the
        cycle between the two first-collapse classes.  The second
        collapse must merge them into one atomic flush set."""
        records = log_ops(
            CopyOp(pid(0), pid(1)),
            CopyOp(pid(1), pid(0)),
            PhysiologicalWrite(pid(1), "stamp", ("t",)),
        )
        nodes = build_intersecting_writes_graph(records)
        assert len(nodes) == 1
        assert nodes[0].vars == {pid(0), pid(1)}

    def test_flush_order_is_topological(self):
        records = log_ops(
            CopyOp(pid(0), pid(1)),
            PhysiologicalWrite(pid(0), "increment"),
            CopyOp(pid(0), pid(2)),
            PhysiologicalWrite(pid(0), "increment"),
        )
        nodes = build_intersecting_writes_graph(records)
        order = topological_flush_order(nodes)
        position = {n.node_id: i for i, n in enumerate(order)}
        for node in nodes:
            for succ in node.succs:
                assert position[node.node_id] < position[succ]


class TestW_GrowsMonotonically:
    def test_vars_never_shrink_in_w(self):
        """The paper's complaint: in W the atomic flush sets only grow.

        A blind write of X does NOT remove X from its node in W (it
        merges, since write sets intersect) — contrast with rW.
        """
        records = log_ops(
            GeneralLogicalOp([pid(5)], [pid(0), pid(1)], "copy_value"),
            PhysicalWrite(pid(0), 42),  # blind write of X
        )
        nodes = build_intersecting_writes_graph(records)
        assert len(nodes) == 1
        assert nodes[0].vars == {pid(0), pid(1)}
