"""Unit tests for the recoverable filesystem domain."""

import pytest

from repro.appfs.filesystem import FileSystem
from repro.db import Database
from repro.errors import ReproError


@pytest.fixture
def db():
    return Database(pages_per_partition=[16], policy="general")


@pytest.fixture
def fs(db):
    return FileSystem(db)


class TestNamespace:
    def test_create_and_lookup(self, fs):
        page = fs.create("a")
        assert fs.lookup("a") == page
        assert fs.lookup("missing") is None
        assert fs.listdir() == ["a"]

    def test_duplicate_create_rejected(self, fs):
        fs.create("a")
        with pytest.raises(ReproError):
            fs.create("a")

    def test_remove_frees_slot(self, fs):
        fs.create("a")
        fs.remove("a")
        assert fs.listdir() == []
        fs.create("b")  # reuses the slot

    def test_full_filesystem(self, fs):
        for i in range(15):
            fs.create(f"f{i}")
        with pytest.raises(ReproError):
            fs.create("one-too-many")

    def test_directory_is_recoverable(self, db, fs):
        fs.create("a")
        fs.create("b")
        db.crash()
        outcome = db.recover()
        assert outcome.ok
        fresh = FileSystem(db)
        assert fresh.listdir() == ["a", "b"]


class TestFileOps:
    def test_write_and_read(self, fs):
        fs.create("a")
        fs.write("a", ((1, "x"),))
        assert fs.read("a") == ((1, "x"),)

    def test_append_record(self, fs):
        fs.create("a")
        fs.append_record("a", 2, "b")
        fs.append_record("a", 1, "a")
        assert fs.read("a") == ((1, "a"), (2, "b"))

    def test_copy_creates_target(self, fs):
        fs.create("src")
        fs.write("src", ((1, "v"),))
        fs.copy("src", "dst")
        assert fs.read("dst") == ((1, "v"),)

    def test_sort(self, fs):
        fs.create("in")
        fs.write("in", ((3, "c"), (1, "a"), (2, "b")))
        fs.sort("in", "out")
        assert fs.read("out") == ((1, "a"), (2, "b"), (3, "c"))

    def test_missing_file_rejected(self, fs):
        with pytest.raises(ReproError):
            fs.read("nope")

    def test_copy_logs_identifiers_not_data(self, db, fs):
        fs.create("src")
        fs.write("src", tuple((k, "x" * 50) for k in range(20)))
        before = db.log.bytes_logged()
        fs.copy("src", "dst")
        copy_cost = db.log.bytes_logged() - before
        # Directory insert + file format + copy op: far below the 1000+
        # bytes the data itself would occupy.
        assert copy_cost < 200
