"""Unit tests for the operation model (all forms of Table 1)."""

import pytest

from repro.errors import OperationError
from repro.ids import PageId
from repro.ops import (
    CopyOp,
    GeneralLogicalOp,
    IdentityWrite,
    MovRec,
    PhysicalWrite,
    PhysiologicalWrite,
    RmvRec,
    WriteNew,
    is_tree_operation,
)
from repro.ops.base import OperationKind, estimate_value_size


def pid(slot):
    return PageId(0, slot)


class TestPhysicalWrite:
    def test_blind_single_target(self):
        op = PhysicalWrite(pid(0), ("v",))
        assert op.readset == frozenset()
        assert op.writeset == {pid(0)}
        assert op.is_blind
        assert op.is_page_oriented

    def test_compute_uses_logged_value(self):
        op = PhysicalWrite(pid(0), 42)
        assert op.apply({}) == {pid(0): 42}

    def test_log_size_includes_value(self):
        small = PhysicalWrite(pid(0), "x")
        large = PhysicalWrite(pid(0), "x" * 1000)
        assert large.log_record_size() > small.log_record_size() + 900

    def test_mutable_value_rejected(self):
        with pytest.raises(TypeError):
            PhysicalWrite(pid(0), [1, 2])


class TestPhysiologicalWrite:
    def test_reads_and_writes_same_page(self):
        op = PhysiologicalWrite(pid(1), "increment", (3,))
        assert op.readset == op.writeset == {pid(1)}
        assert not op.is_blind
        assert op.is_page_oriented

    def test_compute_transition(self):
        op = PhysiologicalWrite(pid(1), "increment", (3,))
        assert op.apply({pid(1): 4}) == {pid(1): 7}

    def test_unknown_transform_fails_at_construction(self):
        with pytest.raises(OperationError):
            PhysiologicalWrite(pid(1), "no_such_transform")

    def test_missing_read_rejected(self):
        op = PhysiologicalWrite(pid(1), "increment")
        with pytest.raises(OperationError):
            op.apply({})

    def test_log_size_excludes_page_value(self):
        op = PhysiologicalWrite(pid(1), "insert_record", (1, "x" * 100))
        # Args are logged but the page value is not; the record should be
        # header + id + tag + args only.
        assert op.log_record_size() < 200


class TestCopyOp:
    def test_reads_src_writes_dst(self):
        op = CopyOp(pid(0), pid(1))
        assert op.readset == {pid(0)}
        assert op.writeset == {pid(1)}
        assert not op.is_page_oriented

    def test_compute_copies(self):
        op = CopyOp(pid(0), pid(1))
        assert op.apply({pid(0): ("data",)}) == {pid(1): ("data",)}

    def test_self_copy_rejected(self):
        with pytest.raises(OperationError):
            CopyOp(pid(0), pid(0))

    def test_identifier_only_logging(self):
        op = CopyOp(pid(0), pid(1))
        assert op.log_record_size() < 64


class TestGeneralLogicalOp:
    def test_multi_read_multi_write(self):
        op = GeneralLogicalOp(
            [pid(0), pid(1)], [pid(2), pid(3)], "concat_sorted"
        )
        result = op.apply({pid(0): ((1, "a"),), pid(1): ((2, "b"),)})
        assert result[pid(2)] == result[pid(3)] == ((1, "a"), (2, "b"))

    def test_single_source_unwrapped(self):
        op = GeneralLogicalOp([pid(0)], [pid(1)], "sort_records")
        result = op.apply({pid(0): ((2, "b"), (1, "a"))})
        assert result[pid(1)] == ((1, "a"), (2, "b"))

    def test_must_write_something(self):
        with pytest.raises(OperationError):
            GeneralLogicalOp([pid(0)], [], "copy_value")


class TestTreeOps:
    def test_write_new_shape(self):
        op = WriteNew(pid(0), pid(1), "copy_value")
        assert op.readset == {pid(0)}
        assert op.writeset == {pid(1)}
        assert op.kind is OperationKind.TREE_WRITE_NEW
        assert op.successor_pairs() == ((pid(1), pid(0)),)

    def test_write_new_must_differ(self):
        with pytest.raises(OperationError):
            WriteNew(pid(0), pid(0))

    def test_movrec_moves_high_records(self):
        op = MovRec(pid(0), 2, pid(1))
        records = ((1, "a"), (2, "b"), (3, "c"), (4, "d"))
        assert op.apply({pid(0): records}) == {pid(1): ((3, "c"), (4, "d"))}

    def test_rmvrec_keeps_low_records(self):
        op = RmvRec(pid(0), 2)
        records = ((1, "a"), (2, "b"), (3, "c"))
        assert op.apply({pid(0): records}) == {pid(0): ((1, "a"), (2, "b"))}

    def test_split_pair_composes(self):
        """MovRec then RmvRec partitions the records exactly."""
        records = tuple((k, f"v{k}") for k in range(10))
        moved = MovRec(pid(0), 4, pid(1)).apply({pid(0): records})[pid(1)]
        kept = RmvRec(pid(0), 4).apply({pid(0): records})[pid(0)]
        assert tuple(sorted(moved + kept)) == records
        assert all(k > 4 for k, _ in moved)
        assert all(k <= 4 for k, _ in kept)

    def test_movrec_logs_no_record_data(self):
        op = MovRec(pid(0), 4, pid(1))
        assert op.log_record_size() < 64

    def test_tree_class_membership(self):
        assert is_tree_operation(PhysicalWrite(pid(0), 1))
        assert is_tree_operation(PhysiologicalWrite(pid(0), "increment"))
        assert is_tree_operation(IdentityWrite(pid(0), 1))
        assert is_tree_operation(WriteNew(pid(0), pid(1)))
        assert not is_tree_operation(CopyOp(pid(0), pid(1)))
        assert not is_tree_operation(
            GeneralLogicalOp([pid(0)], [pid(1), pid(2)], "copy_value")
        )


class TestIdentityWrite:
    def test_is_blind_physical_form(self):
        op = IdentityWrite(pid(0), ("current",))
        assert op.is_blind
        assert op.kind is OperationKind.IDENTITY
        assert op.apply({}) == {pid(0): ("current",)}

    def test_logs_the_value(self):
        op = IdentityWrite(pid(0), "x" * 500)
        assert op.log_record_size() > 500


class TestResultValidation:
    def test_wrong_writeset_detected(self):
        class BadOp(PhysicalWrite):
            def compute(self, reads):
                return {pid(9): 1}

        with pytest.raises(OperationError):
            BadOp(pid(0), 1).apply({})


class TestEstimateValueSize:
    @pytest.mark.parametrize(
        "value,minimum",
        [(None, 1), (True, 1), (7, 8), (2.5, 8), ("abcd", 4), (b"ab", 2)],
    )
    def test_scalars(self, value, minimum):
        assert estimate_value_size(value) >= minimum

    def test_nested(self):
        assert estimate_value_size((("k", "v"),)) >= 2
