"""Unit tests for selective redo / taint exclusion (§6.3, direction 3)."""

import pytest

from repro.db import Database
from repro.errors import RecoveryError
from repro.ids import PageId
from repro.ops.logical import CopyOp, GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.recovery.selective_redo import compute_taint
from repro.wal.log_manager import LogManager


def pid(slot):
    return PageId(0, slot)


def logged(pairs):
    """pairs of (op, source) → records."""
    log = LogManager()
    return [log.append(op, source=source) for op, source in pairs]


def corrupt_by(source):
    return lambda record: record.source == source


class TestTaintClosure:
    def test_no_corruption_no_taint(self):
        records = logged([(PhysicalWrite(pid(0), 1), "good")])
        analysis = compute_taint(records, corrupt_by("bad"))
        assert analysis.excluded == set()

    def test_direct_corruption(self):
        records = logged([
            (PhysicalWrite(pid(0), 1), "good"),
            (PhysicalWrite(pid(1), 666), "bad"),
        ])
        analysis = compute_taint(records, corrupt_by("bad"))
        assert analysis.directly_corrupt == [2]
        assert analysis.collateral == []
        assert analysis.tainted_pages_at_end == {pid(1)}

    def test_reader_of_tainted_page_is_collateral(self):
        records = logged([
            (PhysicalWrite(pid(0), 666), "bad"),
            (CopyOp(pid(0), pid(1)), "good"),       # consumed corruption
            (CopyOp(pid(1), pid(2)), "good"),       # transitively
        ])
        analysis = compute_taint(records, corrupt_by("bad"))
        assert analysis.directly_corrupt == [1]
        assert analysis.collateral == [2, 3]
        assert analysis.tainted_pages_at_end == {pid(0), pid(1), pid(2)}

    def test_blind_overwrite_cleanses(self):
        records = logged([
            (PhysicalWrite(pid(0), 666), "bad"),
            (PhysicalWrite(pid(0), 7), "good"),     # cleanses pid(0)
            (CopyOp(pid(0), pid(1)), "good"),       # reads clean value
        ])
        analysis = compute_taint(records, corrupt_by("bad"))
        assert analysis.excluded == {1}
        assert analysis.tainted_pages_at_end == set()

    def test_kept_derivation_cleanses(self):
        records = logged([
            (PhysicalWrite(pid(5), "clean"), "good"),
            (PhysicalWrite(pid(0), 666), "bad"),
            (CopyOp(pid(5), pid(0)), "good"),       # overwrite from clean
            (PhysiologicalWrite(pid(0), "stamp", ("t",)), "good"),
        ])
        analysis = compute_taint(records, corrupt_by("bad"))
        assert analysis.excluded == {2}


@pytest.fixture
def db():
    database = Database(pages_per_partition=[32], policy="general")
    for slot in range(8):
        database.execute(
            PhysicalWrite(pid(slot), ("clean", slot)), source="app"
        )
    database.checkpoint()
    database.start_backup(steps=2)
    database.run_backup(pages_per_tick=16)
    return database


class TestSelectiveRecovery:
    def test_excludes_corruption_keeps_the_rest(self, db):
        db.execute(PhysicalWrite(pid(1), "GARBAGE"), source="intruder")
        db.execute(
            PhysiologicalWrite(pid(2), "stamp", ("good",)), source="app"
        )
        result = db.selective_recover("intruder")
        assert result.outcome.ok
        assert db.read(pid(1)) == ("clean", 1)
        assert db.read(pid(2))[1] == "good"

    def test_collateral_reported_and_excluded(self, db):
        db.execute(PhysicalWrite(pid(1), "GARBAGE"), source="intruder")
        db.execute(CopyOp(pid(1), pid(20)), source="app")
        result = db.selective_recover("intruder")
        assert result.analysis.collateral
        assert result.outcome.ok
        assert db.read(pid(20)) is None

    def test_no_corruption_recovers_everything(self, db):
        db.execute(
            PhysiologicalWrite(pid(0), "stamp", ("x",)), source="app"
        )
        result = db.selective_recover("ghost")
        assert result.analysis.excluded == set()
        assert result.outcome.ok
        # Identical to ordinary media recovery in this case.
        assert db.read(pid(0))[1] == "x"

    def test_corruption_inside_backup_refused(self, db):
        """Corruption before the backup completed may be in the image."""
        db.execute(PhysicalWrite(pid(1), "OLD-GARBAGE"), source="intruder")
        db.checkpoint()
        db.start_backup(steps=2)
        late_backup = db.run_backup(pages_per_tick=16)
        with pytest.raises(RecoveryError):
            db.selective_recover("intruder", backup=late_backup)

    def test_older_backup_can_still_exclude(self, db):
        first = db.latest_backup()
        db.execute(PhysicalWrite(pid(1), "GARBAGE"), source="intruder")
        db.checkpoint()
        db.start_backup(steps=2)
        db.run_backup(pages_per_tick=16)
        result = db.selective_recover("intruder", backup=first)
        assert result.outcome.ok
        assert db.read(pid(1)) == ("clean", 1)

    def test_database_usable_after_selective_recovery(self, db):
        db.execute(PhysicalWrite(pid(1), "GARBAGE"), source="intruder")
        db.selective_recover("intruder")
        db.execute(
            PhysiologicalWrite(pid(1), "stamp", ("after",)), source="app"
        )
        assert db.read(pid(1))[1] == "after"
