"""Unit tests for the corruption-robustness layer.

Integrity envelopes on stable/backup/archive page images and serialized
log records; the BITROT fault kind; tolerant log loading with tail
repair; the scrubber; the corruption-related trace event kinds.
"""

import random

import pytest

from repro.core.config import BackupConfig
from repro.core.scrub import scrub_archive, scrub_database, scrub_log_file
from repro.db import Database
from repro.errors import CorruptLogRecordError, CorruptPageError
from repro.ids import NULL_LSN, PageId
from repro.obs import events as ev
from repro.obs.tracer import Tracer
from repro.ops.physical import PhysicalWrite
from repro.recovery.redo import POISON, contains_poison
from repro.sim.faults import FaultKind, FaultPlane, FaultSpec, IOPoint
from repro.sim.failure import IOFaultPlan
from repro.storage.archive import load_backup, save_backup, scan_archive
from repro.storage.backup_db import BackupDatabase
from repro.storage.layout import Layout
from repro.storage.page import page_checksum, rot_value, PageVersion
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager
from repro.wal.serialize import (
    load_log,
    record_checksum,
    record_from_spec,
    record_to_spec,
    save_log,
)


def pid(slot, partition=0):
    return PageId(partition, slot)


def wp(slot, value=0):
    return PhysicalWrite(pid(slot), value)


# ------------------------------------------------------------ page envelopes


class TestPageChecksum:
    def test_deterministic(self):
        assert page_checksum(("v", 1), 7) == page_checksum(("v", 1), 7)

    def test_sensitive_to_value_and_lsn(self):
        base = page_checksum(("v", 1), 7)
        assert page_checksum(("v", 2), 7) != base
        assert page_checksum(("v", 1), 8) != base

    def test_rot_value_changes_checksum(self):
        version = PageVersion(("v", 1), 7)
        rotted = PageVersion(rot_value(version.value), 7)
        assert rotted.checksum() != version.checksum()

    def test_uncodecable_values_still_checksum(self):
        # POISON has no codec encoding; the repr fallback must cover it.
        assert isinstance(page_checksum(POISON, 1), int)


class TestStableEnvelopes:
    @pytest.fixture
    def stable(self):
        return StableDatabase(Layout([8]), initial_value=())

    def test_clean_store_has_no_damage(self, stable):
        stable.write_page(pid(1), ("v",), 5)
        assert stable.damaged_pages() == []
        assert stable.verify_page(pid(1))

    def test_bitrot_detected_on_read(self, stable):
        stable.write_page(pid(1), ("v",), 5)
        assert stable._bitrot(random.Random(0))
        [damaged] = stable.damaged_pages()
        with pytest.raises(CorruptPageError) as excinfo:
            stable.read_page(damaged)
        assert excinfo.value.store == "stable"
        assert excinfo.value.page_id == damaged

    def test_rewrite_heals_the_envelope(self, stable):
        stable.write_page(pid(1), ("v",), 5)
        stable._bitrot(random.Random(0))
        [damaged] = stable.damaged_pages()
        stable.write_page(damaged, ("fresh",), 9)
        assert stable.damaged_pages() == []

    def test_pages_ahead_of(self, stable):
        stable.write_page(pid(1), ("v",), 5)
        stable.write_page(pid(2), ("w",), 9)
        assert stable.pages_ahead_of(5) == [pid(2)]
        assert stable.pages_ahead_of(9) == []


class TestBackupEnvelopes:
    def make_backup(self):
        backup = BackupDatabase(1, media_scan_start_lsn=1)
        backup.record_page(pid(0), PageVersion(("a",), 1))
        backup.record_page(pid(1), PageVersion(("b",), 2))
        return backup

    def test_clean_backup_verifies(self):
        backup = self.make_backup()
        assert backup.damaged_pages() == []
        backup.verify_pages([pid(0), pid(1)])

    def test_bitrot_detected(self):
        backup = self.make_backup()
        assert backup._bitrot(random.Random(0))
        [damaged] = backup.damaged_pages()
        with pytest.raises(CorruptPageError) as excinfo:
            backup.read_page(damaged)
        assert excinfo.value.store == "backup"
        with pytest.raises(CorruptPageError):
            backup.verify_pages([pid(0), pid(1)])

    def test_bitrot_on_empty_backup_stays_unfired(self):
        backup = BackupDatabase(1, media_scan_start_lsn=1)
        assert backup._bitrot(random.Random(0)) is False


class TestArchiveEnvelopes:
    def make_archived(self, tmp_path):
        backup = BackupDatabase(1, media_scan_start_lsn=1)
        backup.record_page(pid(0), PageVersion(("a",), 1))
        backup.record_page(pid(1), PageVersion(("b",), 2))
        backup.complete(3)
        path = str(tmp_path / "backup.json")
        save_backup(backup, path)
        return backup, path

    def test_clean_roundtrip(self, tmp_path):
        backup, path = self.make_archived(tmp_path)
        loaded = load_backup(path)
        assert loaded.pages() == backup.pages()
        assert loaded.damaged_pages() == []

    def test_tampered_archive_detected(self, tmp_path):
        _, path = self.make_archived(tmp_path)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text.replace('"a"', '"tampered"'))
        _, damaged = scan_archive(path)
        assert damaged == [pid(0)]
        with pytest.raises(CorruptPageError) as excinfo:
            load_backup(path)
        assert excinfo.value.store == "archive"


# ------------------------------------------------------------- log envelopes


class TestLogRecordChecksums:
    def test_append_is_lazy_serialize_stamps_crc(self):
        # The envelope is lazy: an in-memory append does no CRC work,
        # the stamp happens at the serialization boundary.
        log = LogManager()
        record = log.append(wp(0, 1))
        assert record.crc is None
        assert log.damaged_records() == []
        spec = record_to_spec(record)
        assert spec["crc"] == record_checksum(record)

    def test_spec_roundtrip_verifies(self):
        log = LogManager()
        record = log.append(wp(0, 1))
        clone = record_from_spec(record_to_spec(record))
        assert clone.crc == record_checksum(record)

    def test_tampered_spec_rejected(self):
        log = LogManager()
        spec = record_to_spec(log.append(wp(0, 1)))
        spec["crc"] ^= 1
        with pytest.raises(CorruptLogRecordError) as excinfo:
            record_from_spec(spec)
        assert excinfo.value.lsn == 1

    def test_bitrot_and_repair_tail(self):
        log = LogManager()
        for slot in range(4):
            log.append(wp(slot, slot))
        assert log._bitrot(random.Random(0))  # rots the last record
        assert log.damaged_records() == [4]
        dropped = log.repair_tail()
        assert dropped == 1
        assert log.end_lsn == 3
        assert log.tail_repair_dropped == 1
        assert log.damaged_records() == []

    def test_repair_tail_truncates_at_first_damage(self):
        log = LogManager()
        for slot in range(3):
            log.append(wp(slot, slot))
        log._bitrot(random.Random(0))  # damages LSN 3 (the tail so far)
        log.append(wp(3, 3))  # a good record lands after the rot
        assert log.repair_tail() == 2
        assert log.end_lsn == 2


class TestTolerantLogLoading:
    def write_log(self, tmp_path, records=4):
        db = Database(pages_per_partition=[8], policy="general")
        for slot in range(records):
            db.execute(PhysicalWrite(pid(slot), ("r", slot)))
        path = str(tmp_path / "log.json")
        save_log(db.log, path)
        return path

    def test_clean_file_loads(self, tmp_path):
        path = self.write_log(tmp_path)
        log = load_log(path, repair_tail=True)
        assert len(log) == 4
        assert log.tail_repair_dropped == 0

    def test_truncated_file_salvages_prefix(self, tmp_path):
        path = self.write_log(tmp_path)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) - 40])
        log = load_log(path, repair_tail=True)
        assert 0 < len(log) < 4
        assert log.tail_repair_dropped > 0

    def test_tampered_record_truncates_there(self, tmp_path):
        path = self.write_log(tmp_path)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text.replace('["r",2]', '["X",2]'))
        log = load_log(path, repair_tail=True)
        assert log.end_lsn == 2
        assert log.tail_repair_dropped > 0


# ---------------------------------------------------------- bitrot fault kind


class TestBitrotFaultKind:
    def test_fires_via_corruptor(self):
        plane = FaultPlane([
            FaultSpec(FaultKind.BITROT, point=IOPoint.STABLE_WRITE,
                      at_io=2, seed=7),
        ])
        fired = []
        plane.check(IOPoint.STABLE_WRITE, corrupt=lambda rng: True)
        plane.check(IOPoint.STABLE_WRITE,
                    corrupt=lambda rng: fired.append(rng.random()) or True)
        assert len(fired) == 1
        assert plane.injected_total == 1

    def test_deterministic_in_seed(self):
        def draws(seed):
            plane = FaultPlane([
                FaultSpec(FaultKind.BITROT, point=IOPoint.STABLE_WRITE,
                          at_io=1, seed=seed),
            ])
            out = []
            plane.check(IOPoint.STABLE_WRITE,
                        corrupt=lambda rng: out.append(rng.random()) or True)
            return out

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_stays_armed_without_corruptor(self):
        plane = FaultPlane([
            FaultSpec(FaultKind.BITROT, point=IOPoint.STABLE_WRITE, at_io=1),
        ])
        plane.check(IOPoint.STABLE_WRITE)  # device without a corruptor
        assert plane.injected_total == 0
        plane.check(IOPoint.STABLE_WRITE, corrupt=lambda rng: True)
        assert plane.injected_total == 1

    def test_stays_armed_when_corruptor_declines(self):
        plane = FaultPlane([
            FaultSpec(FaultKind.BITROT, point=IOPoint.STABLE_WRITE, at_io=1),
        ])
        plane.check(IOPoint.STABLE_WRITE, corrupt=lambda rng: False)
        assert plane.injected_total == 0

    def test_io_fault_plan_threads_seed(self):
        plan = IOFaultPlan(at_io=3, kind=FaultKind.BITROT,
                           point=IOPoint.LOG_APPEND, seed=42)
        assert plan.to_spec().seed == 42


# ----------------------------------------------------------------- poison


class TestContainsPoison:
    def test_identity(self):
        assert contains_poison(POISON)
        assert not contains_poison(("clean", 1))

    def test_nested_containers(self):
        assert contains_poison(("stamped", 4, POISON))
        assert contains_poison([1, {"k": (POISON,)}])
        assert contains_poison({POISON: 1})
        assert not contains_poison({"k": [1, (2, "x")]})


# ------------------------------------------------------------------ scrubber


def build_backed_up_db(pages=16, writes=8):
    db = Database(pages_per_partition=[pages], policy="general")
    for slot in range(writes):
        db.execute(PhysicalWrite(pid(slot), ("record", slot)))
    db.start_backup(BackupConfig(steps=4))
    db.run_backup()
    return db


class TestScrubber:
    def test_clean_database(self):
        report = scrub_database(build_backed_up_db())
        assert report.ok
        assert report.findings == []
        assert report.pages_scanned > 0
        assert report.records_scanned > 0
        assert report.backups_scanned == 1
        assert "CLEAN" in report.summary()

    def test_detects_damage_at_every_site(self):
        db = build_backed_up_db()
        rng = random.Random(0)
        assert db.stable._bitrot(rng)
        assert db.latest_backup()._bitrot(rng)
        assert db.log._bitrot(rng)
        report = scrub_database(db)
        assert not report.ok
        sites = {f.site for f in report.findings if f.severity == "fatal"}
        assert sites == {"stable", "log", "backup"}
        assert "DAMAGED" in report.summary()

    def test_emits_corruption_events(self):
        db = build_backed_up_db()
        tracer = Tracer()
        db.attach_tracer(tracer)
        db.stable._bitrot(random.Random(0))
        scrub_database(db)
        kinds = [e.kind for e in tracer.events]
        assert ev.CORRUPTION_DETECTED in kinds

    def test_scrub_archive(self, tmp_path):
        db = build_backed_up_db()
        path = str(tmp_path / "backup.json")
        save_backup(db.latest_backup(), path)
        assert scrub_archive(path).ok
        db.latest_backup()._bitrot(random.Random(0))
        save_backup(db.latest_backup(), path)
        report = scrub_archive(path)
        assert not report.ok

    def test_scrub_log_file(self, tmp_path):
        db = build_backed_up_db()
        path = str(tmp_path / "log.json")
        save_log(db.log, path)
        assert scrub_log_file(path).ok
        db.log._bitrot(random.Random(0))
        save_log(db.log, path)
        report = scrub_log_file(path)
        assert not report.ok


# ------------------------------------------------------------- event schema


class TestCorruptionEvents:
    def test_kinds_registered_with_required_fields(self):
        assert ev.EVENT_FIELDS[ev.CORRUPTION_DETECTED] == ("site",)
        assert ev.EVENT_FIELDS[ev.CHAIN_FALLBACK] == ("action",)
        assert ev.EVENT_FIELDS[ev.QUARANTINE] == ("page",)

    def test_validate_roundtrip(self):
        assert ev.validate_event(
            ev.CORRUPTION_DETECTED, {"site": "stable"}) == []
        assert ev.validate_event(
            ev.CHAIN_FALLBACK, {"action": "older-generation"}) == []
        assert ev.validate_event(ev.QUARANTINE, {"page": "P0:3"}) == []
        assert ev.validate_event(ev.QUARANTINE, {}) != []
