"""Coverage of small paths not exercised elsewhere."""

import pytest

from repro.core.progress import PartitionProgress
from repro.db import Database
from repro.ids import PageId
from repro.kvstore import KVStore
from repro.ops.physical import PhysicalWrite
from repro.sim.metrics import Metrics


def pid(slot):
    return PageId(0, slot)


class TestProgressExtras:
    def test_doubt_range(self):
        progress = PartitionProgress(0, 100)
        progress.begin(25)
        progress.advance(50)
        assert progress.doubt_range() == range(25, 50)

    def test_repr(self):
        progress = PartitionProgress(0, 10)
        assert "D=0" in repr(progress)


class TestMetricsExtras:
    def test_step_fractions(self):
        metrics = Metrics()
        metrics.record_decision("done", True, step=1)
        metrics.record_decision("pend", False, step=1)
        metrics.record_decision("done", True, step=2)
        assert metrics.step_fractions() == {1: 0.5, 2: 1.0}

    def test_step_fractions_empty(self):
        assert Metrics().step_fractions() == {}


class TestDatabaseExtras:
    def test_install_some_with_default_rng(self):
        db = Database(pages_per_partition=[8])
        db.execute(PhysicalWrite(pid(0), "v"))
        assert db.install_some(1) == 1

    def test_validate_backup_without_backup_raises(self):
        from repro.errors import NoBackupError

        db = Database(pages_per_partition=[8])
        with pytest.raises(NoBackupError):
            db.validate_backup()

    def test_selective_recover_without_backup_raises(self):
        from repro.errors import NoBackupError

        db = Database(pages_per_partition=[8])
        with pytest.raises(NoBackupError):
            db.selective_recover("ghost")

    def test_media_recover_point_in_time_then_continue(self):
        db = Database(pages_per_partition=[8])
        db.execute(PhysicalWrite(pid(0), "v1"))
        db.checkpoint()
        db.start_backup(steps=2)
        backup = db.run_backup()
        target = db.log.end_lsn
        db.execute(PhysicalWrite(pid(0), "v2"))
        db.media_failure()
        db.media_recover(backup=backup, to_lsn=target, verify=False)
        # The database serves again after a point-in-time restore.
        db.execute(PhysicalWrite(pid(1), "post"))
        assert db.read(pid(1)) == "post"


class TestKVStoreExtras:
    def test_reopen_after_external_recovery(self):
        store = KVStore.create(capacity_pages=64, order=4)
        store.put(1, "one")
        db = store.db
        db.crash()
        db.recover()
        reopened = KVStore.reopen(db, order=4)
        assert reopened.get(1) == "one"

    def test_repr(self):
        store = KVStore.create(capacity_pages=64)
        store.put(1, "x")
        assert "keys=1" in repr(store)

    def test_failed_restore_raises(self):
        from repro.errors import ReproError

        store = KVStore.create(capacity_pages=64)
        store.put(1, "x")
        backup = store.online_backup(steps=2)
        # Sabotage: wipe the image AND push the scan start past the
        # history so roll-forward cannot regenerate it.
        backup._versions.clear()
        backup._copy_order.clear()
        backup.media_scan_start_lsn = store.db.log.end_lsn + 1
        store.simulate_media_failure()
        with pytest.raises(ReproError):
            store.restore_from_backup(backup)


class TestStandbyExtras:
    def test_lag_and_repr(self):
        from repro.core.standby import StandbyReplica

        db = Database(pages_per_partition=[8])
        standby = StandbyReplica(db.layout, db.log)
        db.execute(PhysicalWrite(pid(0), "v"))
        assert standby.lag() == 1
        assert "lag=1" in repr(standby)
        standby.catch_up()
        assert standby.read_page(pid(0)) == "v"

    def test_seed_requires_complete_backup(self):
        from repro.core.standby import StandbyReplica
        from repro.errors import NoBackupError

        db = Database(pages_per_partition=[8])
        db.start_backup(steps=2)
        run = db.engine.active
        with pytest.raises(NoBackupError):
            StandbyReplica.seed_from_backup(run.backup, db.log, db.layout)
        db.run_backup()


class TestMediaLogViewExtras:
    def test_scan_to_lsn(self):
        db = Database(pages_per_partition=[8])
        for slot in range(5):
            db.execute(PhysicalWrite(pid(slot), slot))
        from repro.wal.media_log import MediaLogView

        view = MediaLogView(db.log, scan_start_lsn=2)
        assert [r.lsn for r in view.scan(to_lsn=4)] == [2, 3, 4]
