"""Unit tests for the resumable application runtime."""

import pytest

from repro.appfs.runtime import (
    AppEmit,
    AppFeed,
    AppStep,
    RecoverableApplication,
    register_logic,
)
from repro.db import Database
from repro.errors import ReproError
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite


def pid(slot):
    return PageId(0, slot)


APP = pid(30)


def summing_logic(user_state, pending_input):
    """Accumulate inputs (length for non-numeric); output the total."""
    if isinstance(pending_input, (str, bytes, tuple)):
        pending_input = len(pending_input)
    total = (user_state or 0) + (pending_input or 0)
    return total, total


register_logic("summer", summing_logic)


@pytest.fixture
def db():
    return Database(pages_per_partition=[32], policy="tree")


@pytest.fixture
def app(db):
    return RecoverableApplication.launch(db, APP, "summer", initial_state=0)


class TestLifecycle:
    def test_launch_requires_registered_logic(self, db):
        with pytest.raises(ReproError):
            RecoverableApplication.launch(db, APP, "unregistered")

    def test_initial_state(self, app):
        assert app.step_number == 0
        assert app.user_state == 0

    def test_feed_advance_emit_cycle(self, db, app):
        db.execute(PhysicalWrite(pid(1), 7))
        app.feed(pid(1))
        app.advance()
        assert app.step_number == 1
        assert app.user_state == 7
        app.emit(pid(2))
        assert db.read(pid(2)) == 7

    def test_steps_accumulate(self, db, app):
        for slot, value in ((1, 5), (2, 10), (3, 1)):
            db.execute(PhysicalWrite(pid(slot), value))
            app.feed(pid(slot))
            app.advance()
        assert app.step_number == 3
        assert app.user_state == 16

    def test_identifier_only_logging(self, db, app):
        db.execute(PhysicalWrite(pid(1), "x" * 500))
        before = db.log.bytes_logged()
        app.feed(pid(1))
        app.advance()
        app.emit(pid(2))
        # Three records, none carrying the 500-byte value.
        assert db.log.bytes_logged() - before < 200


class TestRecovery:
    def test_crash_resume_continues_exactly(self, db, app):
        db.execute(PhysicalWrite(pid(1), 5))
        app.feed(pid(1))
        app.advance()
        db.crash()
        assert db.recover().ok
        resumed = RecoverableApplication.resume(db, APP)
        assert resumed.step_number == 1
        assert resumed.user_state == 5
        # And it keeps computing from where it stopped.
        db.execute(PhysicalWrite(pid(2), 3))
        resumed.feed(pid(2))
        resumed.advance()
        assert resumed.user_state == 8

    def test_media_failure_resume(self, db, app):
        db.execute(PhysicalWrite(pid(1), 9))
        app.feed(pid(1))
        app.advance()
        db.start_backup(steps=2)
        db.run_backup()
        db.execute(PhysicalWrite(pid(2), 2))
        app.feed(pid(2))
        app.advance()
        app.emit(pid(3))
        db.media_failure()
        assert db.media_recover().ok
        resumed = RecoverableApplication.resume(db, APP)
        assert resumed.step_number == 2
        assert resumed.user_state == 11
        assert db.read(pid(3)) == 11

    def test_resume_unlaunched_rejected(self, db):
        with pytest.raises(ReproError):
            RecoverableApplication.resume(db, pid(5))

    def test_backup_order_matters_for_iwof(self, db):
        """The app page (slot 30, near the partition end) is backed up
        late: feeds during a backup incur no Iw/oF (§6.2)."""
        import random

        app = RecoverableApplication.launch(db, APP, "summer", 0)
        rng = random.Random(1)
        data = [pid(s) for s in range(1, 10)]
        for page in data:
            db.execute(PhysicalWrite(page, 1))
        db.start_backup(steps=4)
        while db.backup_in_progress():
            db.backup_step(2)
            source = rng.choice(data)
            app.feed(source)
            app.advance()
            db.execute(PhysicalWrite(source, rng.randrange(10)))
            db.install_some(2, rng)
        assert db.metrics.iwof_during_backup == 0
        db.media_failure()
        assert db.media_recover().ok


class TestOperationShapes:
    def test_feed_successor_pair(self):
        op = AppFeed(pid(1), APP)
        assert op.successor_pairs() == ((APP, pid(1)),)

    def test_emit_successor_pair(self):
        op = AppEmit(APP, pid(2))
        assert op.successor_pairs() == ((pid(2), APP),)

    def test_step_is_page_oriented(self):
        op = AppStep(APP, "summer")
        assert op.readset == op.writeset == {APP}

    def test_double_registration_same_fn_ok(self):
        register_logic("summer", summing_logic)  # idempotent

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ReproError):
            register_logic("summer", lambda s, i: (s, i))
