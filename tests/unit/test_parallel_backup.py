"""The thread-parallel partitioned sweep: byte-identical equivalence.

The parallel engine (``ParallelBackupRun``) fans the batched sweep's
per-partition span *reads* out to a thread pool but keeps all planning,
D/P frontier movement, and backup recording on the coordinator thread in
the serial schedule order.  The contract is therefore strict: a
``workers=4`` sweep must produce a backup byte-identical to the serial
batched sweep's — same pages, same copy order, same serialized archive —
and must recover the database exactly as well, including under injected
faults.  These tests hold the engine to that contract, and cover the
concurrency primitives underneath it (sharded metrics, cross-thread
tracer emits).
"""

import os
import random
import threading

import pytest

from repro import ParallelBackupEngine
from repro.core.config import BackupConfig
from repro.db import Database
from repro.errors import ReproError
from repro.sim.faults import FaultKind, FaultPlane, FaultSpec, IOPoint
from repro.sim.metrics import Metrics
from repro.storage.archive import save_backup
from repro.workloads import mixed_logical_workload

LAYOUT = [12, 12, 12, 12]


def drive_backup(workers, interleave=False, faults=None, seed=9):
    """One full backup over a four-partition layout, optionally with an
    interleaved workload, returning ``(db, sealed_backup)``."""
    db = Database(pages_per_partition=list(LAYOUT), policy="general")
    if faults is not None:
        db.attach_faults(FaultPlane(faults))
    source = mixed_logical_workload(db.layout, seed=seed, count=10**9)
    for _ in range(30):
        db.execute(next(source))
    cfg = BackupConfig(steps=4, pages_per_tick=16, workers=workers)
    db.start_backup(cfg)
    rng = random.Random(seed)

    def tick():
        if interleave:
            for _ in range(3):
                db.execute(next(source))
            db.install_some(2, rng)

    backup = db.run_backup(cfg, tick=tick)
    return db, backup


class TestByteIdenticalEquivalence:
    @pytest.mark.parametrize("interleave", [False, True])
    def test_same_pages_order_and_archive_bytes(self, tmp_path, interleave):
        _, serial = drive_backup(workers=1, interleave=interleave)
        _, parallel = drive_backup(workers=4, interleave=interleave)
        assert parallel.pages() == serial.pages()
        assert parallel.copy_order() == serial.copy_order()
        path_s = os.path.join(str(tmp_path), "serial.backup")
        path_p = os.path.join(str(tmp_path), "parallel.backup")
        save_backup(serial, path_s)
        save_backup(parallel, path_p)
        with open(path_s, "rb") as fh:
            bytes_s = fh.read()
        with open(path_p, "rb") as fh:
            bytes_p = fh.read()
        assert bytes_p == bytes_s

    def test_same_metrics_and_frontier(self):
        db_s, _ = drive_backup(workers=1, interleave=True)
        db_p, _ = drive_backup(workers=4, interleave=True)
        assert (db_p.metrics.backup_pages_copied
                == db_s.metrics.backup_pages_copied)
        assert (db_p.metrics.backup_bulk_reads
                == db_s.metrics.backup_bulk_reads)
        assert (db_p.metrics.iwof_during_backup
                == db_s.metrics.iwof_during_backup)

    def test_parallel_backup_media_recovers(self):
        db, backup = drive_backup(workers=4, interleave=True)
        db.media_failure()
        outcome = db.media_recover(backup=backup)
        assert outcome.ok


class TestParallelUnderFaults:
    """The parallel engine keeps its recoverability guarantees when the
    storage layer misbehaves (the faultsweep runs the full matrix; these
    pin the representative cases in the tier-1 suite)."""

    def test_transient_read_errors_absorbed(self):
        faults = [FaultSpec(FaultKind.TRANSIENT,
                            point=IOPoint.STABLE_BULK_READ,
                            at_io=2, times=2)]
        db, backup = drive_backup(workers=4, interleave=True, faults=faults)
        assert db.metrics.io_retries >= 2
        db.media_failure()
        assert db.media_recover(backup=backup).ok

    def test_torn_span_resumed_and_recoverable(self):
        faults = [FaultSpec(FaultKind.TORN,
                            point=IOPoint.BACKUP_BULK_RECORD,
                            at_io=1, keep=1)]
        db, backup = drive_backup(workers=4, interleave=True, faults=faults)
        assert db.metrics.torn_spans_resumed >= 1
        db.media_failure()
        assert db.media_recover(backup=backup).ok


class TestParallelEngineSurface:
    def test_parallel_engine_defaults_workers(self):
        db = Database(pages_per_partition=[8, 8], policy="general")
        engine = ParallelBackupEngine(db.cm, workers=2)
        run = engine.start_backup(steps=2)
        assert run.workers == 2
        while not run.finished_copying:
            run.copy_some(4)
        run.seal()
        assert run.backup.copied_count() == 16

    def test_workers_require_batched(self):
        with pytest.raises(ReproError):
            BackupConfig(steps=2, batched=False, workers=2)
        with pytest.raises(ReproError):
            BackupConfig(steps=2, workers=0)


class TestMetricsSharding:
    def test_absorb_sums_scalars_and_dicts(self):
        main = Metrics()
        main.backup_pages_copied = 3
        main.io_retries = 1
        shard = main.shard()
        assert isinstance(shard, Metrics)
        shard.backup_pages_copied = 4
        shard.io_retries = 2
        main.absorb(shard)
        assert main.backup_pages_copied == 7
        assert main.io_retries == 3

    def test_absorb_merges_phase_timings(self):
        main = Metrics()
        main.observe_phase("sweep", 0.010)
        shard = main.shard()
        shard.observe_phase("sweep", 0.030)
        shard.observe_phase("redo", 0.005)
        main.absorb(shard)
        sweep = main.phase_timings["sweep"]
        assert sweep.count == 2
        assert sweep.min_s == pytest.approx(0.010)
        assert sweep.max_s == pytest.approx(0.030)
        assert main.phase_timings["redo"].count == 1

    def test_parallel_sweep_counts_match_serial(self):
        # The end-to-end guarantee the sharding exists for: no lost or
        # double-counted updates when four workers report concurrently.
        db_s, _ = drive_backup(workers=1)
        db_p, _ = drive_backup(workers=4)
        assert (db_p.metrics.backup_pages_copied
                == db_s.metrics.backup_pages_copied)


class TestTracerCrossThread:
    def test_worker_emits_merge_in_order(self):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        tracer.emit("main_start")
        barrier = threading.Barrier(3)

        def worker(name):
            barrier.wait()
            for index in range(10):
                tracer.emit("worker_event", worker=name, index=index)

        threads = [threading.Thread(target=worker, args=(f"w{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        barrier.wait()
        for thread in threads:
            thread.join()
        tracer.emit("main_end")
        events = tracer.events
        assert [e.kind for e in events[:1]] == ["main_start"]
        assert events[-1].kind == "main_end"
        assert len(tracer.find("worker_event")) == 20
        # Sequence numbers are unique, gapless, and time-ordered.
        assert [e.seq for e in events] == list(range(1, len(events) + 1))
        assert all(events[i].t <= events[i + 1].t
                   for i in range(len(events) - 1))

    def test_drain_on_read_paths(self):
        from repro.obs.tracer import Tracer

        tracer = Tracer()

        def worker():
            tracer.emit("from_worker")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        # No owner emit since: the read path itself must flush.
        assert len(tracer) == 1
        assert tracer.find("from_worker")
