"""Unit tests for the multi-stream WAL (repro.wal.multi_log).

Covers the contract the striping must preserve: dense global LSNs, the
one-stream-per-object pinning (Iw/oF identity writes above all), the
globally consistent durable frontier, per-stream-suffix crash loss,
torn-tail repair and prefix truncation over stripes, the format-2
serialization envelope, incremental statistics, structured tail events,
and the group-commit durability guarantee under real threads.
"""

import os
import threading

import pytest

from repro.errors import LogTruncatedError
from repro.ids import PageId
from repro.obs.tracer import Tracer
from repro.ops.identity import IdentityWrite
from repro.ops.logical import GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.wal.checkpoint import CheckpointOp
from repro.wal.multi_log import LogStream, MultiLogManager, stream_for_page
from repro.wal.serialize import load_log, save_log


def W(part, slot, value=1):
    return PhysicalWrite(PageId(part, slot), (value,))


def fill(log, n, parts=3, slots=16, start=0):
    for i in range(n):
        log.append(W((start + i) % parts, (start + i * 7) % slots, i))


# ------------------------------------------------------------------ routing


def test_stream_for_page_is_stable_and_in_range():
    for n in (1, 2, 4, 7):
        for part in range(5):
            for slot in range(40):
                s = stream_for_page(PageId(part, slot), n)
                assert 0 <= s < n
                assert s == stream_for_page(PageId(part, slot), n)


def test_records_of_one_object_pin_to_one_stream():
    log = MultiLogManager(streams=4)
    page = PageId(1, 5)
    for i in range(10):
        log.append(PhysicalWrite(page, (i,)))
        log.append(IdentityWrite(page, (i,)))
    streams_used = {r.stream_id for r in log.merge_scan()}
    assert len(streams_used) == 1


def test_identity_write_shares_stream_with_its_page_updates():
    # The Iw/oF constraint: an identity write for page p lands on the
    # same stream as every other record whose home object is p, so the
    # per-object record order survives striping.
    log = MultiLogManager(streams=4)
    page = PageId(2, 9)
    update = log.append(PhysicalWrite(page, ("v",)))
    iwof = log.append(IdentityWrite(page, ("v",)))
    assert iwof.stream_id == update.stream_id
    assert iwof.stream_seq == update.stream_seq + 1


def test_multi_page_op_routes_by_smallest_write_page():
    log = MultiLogManager(streams=4)
    a, b = PageId(0, 1), PageId(2, 9)
    op = GeneralLogicalOp([a], [a, b], "copy_value", ())
    record = log.append(op)
    assert record.stream_id == stream_for_page(min((a, b)), 4)


def test_checkpoint_records_go_to_stream_zero():
    log = MultiLogManager(streams=4)
    record = log.append(CheckpointOp({}))
    assert record.stream_id == 0


# ------------------------------------------------- LSNs, order, merge scans


def test_global_lsns_stay_dense_across_streams():
    log = MultiLogManager(streams=4)
    fill(log, 100)
    assert [r.lsn for r in log.merge_scan()] == list(range(1, 101))
    assert log.end_lsn == 100
    assert sum(len(s) for s in log.streams) == 100
    assert len({r.stream_id for r in log.merge_scan()}) > 1


def test_merge_scan_range_and_truncation_error():
    log = MultiLogManager(streams=3)
    fill(log, 50)
    assert [r.lsn for r in log.merge_scan(10, 20)] == list(range(10, 21))
    log.truncate_prefix(15)
    with pytest.raises(LogTruncatedError):
        list(log.merge_scan(5))


def test_per_stream_sequence_is_dense_and_ascending():
    log = MultiLogManager(streams=4)
    fill(log, 80)
    for stream in log.streams:
        seqs = [r.stream_seq for r in stream.records]
        assert seqs == list(range(1, len(stream.records) + 1))
        lsns = [r.lsn for r in stream.records]
        assert lsns == sorted(lsns)


def test_record_at_and_scan_agree_with_merge_scan():
    log = MultiLogManager(streams=4)
    fill(log, 60)
    assert [r.lsn for r in log.scan()] == [r.lsn for r in log.merge_scan()]
    assert log.record_at(37).lsn == 37


# ---------------------------------------------------- durability and crashes


def test_frontier_requires_every_lower_lsn_durable():
    log = MultiLogManager(streams=4, auto_force=False)
    fill(log, 40)
    assert log.flushed_lsn == 0
    # Force one stream's records by hand: the global frontier must not
    # advance past the first unflushed record of any OTHER stream.
    log.streams[0].flushed_count = len(log.streams[0].records)
    assert log._advance_frontier() < 40  # noqa: SLF001
    log.force()
    assert log.flushed_lsn == 40


def test_crash_loses_only_per_stream_unforced_suffixes():
    log = MultiLogManager(streams=4, auto_force=False, group_commit=False)
    fill(log, 100)
    log.force(up_to=55)
    frontier = log.flushed_lsn
    assert frontier >= 55
    before = {
        s.stream_id: [r.lsn for r in s.records if r.lsn <= frontier]
        for s in log.streams
    }
    lost = log.discard_unflushed()
    assert lost == 100 - frontier
    for stream in log.streams:
        assert [r.lsn for r in stream.records] == before[stream.stream_id]
    # The surviving log is a dense global prefix.
    assert [r.lsn for r in log.merge_scan()] == list(range(1, frontier + 1))
    assert log.end_lsn == log.flushed_lsn == frontier


def test_appends_resume_densely_after_crash():
    log = MultiLogManager(streams=4, auto_force=False, group_commit=False)
    fill(log, 30)
    log.force(up_to=20)
    log.discard_unflushed()
    end = log.end_lsn
    record = log.append(W(0, 0))
    # A fresh LSN never reuses a lost one out of order with the counter:
    # the counter is monotone, so the new record sorts after everything.
    assert record.lsn > end
    assert [r.lsn for r in log.merge_scan()] == sorted(
        r.lsn for r in log.merge_scan()
    )


def test_repair_tail_cuts_all_streams_at_first_damage():
    log = MultiLogManager(streams=4)
    fill(log, 60)
    victim = log.record_at(40)
    victim.crc = 12345  # bogus envelope: fails verification
    dropped = log.repair_tail()
    assert dropped == 21  # LSNs 40..60
    assert log.end_lsn == 39
    assert [r.lsn for r in log.merge_scan()] == list(range(1, 40))
    assert log.flushed_lsn <= 39
    assert log.tail_repair_dropped == 21
    assert log.stats.records == 39


def test_truncate_prefix_drops_per_stream_prefixes():
    log = MultiLogManager(streams=4)
    fill(log, 80)
    discarded = log.truncate_prefix(31)
    assert discarded == 30
    assert log.first_retained_lsn == 31
    for stream in log.streams:
        assert all(r.lsn >= 31 for r in stream.records)
    assert [r.lsn for r in log.merge_scan(31)] == list(range(31, 81))
    assert log.stats.records == 50
    assert log.count() == 50


# ------------------------------------------------------------- statistics


def test_stats_track_appends_and_removals():
    log = MultiLogManager(streams=4, auto_force=False, group_commit=False)
    page = PageId(0, 3)
    from repro.wal.records import RecordFlag

    for i in range(20):
        log.append(W(0, i % 8, i))
    log.append(IdentityWrite(page, (1,)),
               flags=RecordFlag.CM_INJECTED | RecordFlag.IWOF)
    assert log.stats.records == 21
    assert log.stats.iwof_records == 1
    assert log.stats.cm_injected == 1
    assert log.count() == 21
    assert log.iwof_count() == 1
    assert log.bytes_logged() == sum(r.size_bytes for r in log.merge_scan())
    log.force(up_to=10)
    log.discard_unflushed()
    assert log.stats.records == log.end_lsn
    assert log.count() == log.end_lsn


# ------------------------------------------------------------ trace events


def test_crash_emits_log_tail_lost_with_per_stream_counts():
    log = MultiLogManager(streams=4, auto_force=False, group_commit=False)
    tracer = Tracer()
    log.tracer = tracer
    fill(log, 40)
    log.force(up_to=25)
    frontier = log.flushed_lsn
    lost = log.discard_unflushed()
    events = [e for e in tracer.events if e.kind == "log_tail_lost"]
    assert len(events) == 1
    assert events[0].get("dropped") == lost
    assert events[0].get("cut_lsn") == frontier + 1
    per_stream = events[0].get("per_stream")
    assert sum(per_stream.values()) == lost


def test_repair_emits_log_tail_repair_event():
    log = MultiLogManager(streams=4)
    tracer = Tracer()
    log.tracer = tracer
    fill(log, 30)
    log.record_at(21).crc = 999
    dropped = log.repair_tail()
    events = [e for e in tracer.events if e.kind == "log_tail_repair"]
    assert len(events) == 1
    assert events[0].get("dropped") == dropped
    assert events[0].get("cut_lsn") == 21


def test_tail_repair_dropped_mirrored_into_metrics_snapshot():
    from repro.db import Database

    db = Database(pages_per_partition=[16], log_streams=4,
                  auto_force_log=True)
    for i in range(20):
        db.execute(W(0, i % 16, i))
    db.log.record_at(15).crc = 4242
    db.crash()
    db.recover()
    assert db.log.tail_repair_dropped > 0
    snap = db.metrics.snapshot()
    assert snap["tail_repair_dropped"] == db.log.tail_repair_dropped


# -------------------------------------------------------------- group commit


def test_group_commit_force_never_returns_before_durable():
    # Real-thread stress: force() must not return while the caller's
    # record is still above the durable frontier, and flushed_lsn must
    # never claim an LSN whose tick has not completed.
    log = MultiLogManager(streams=4, auto_force=False, group_commit=True,
                          force_delay_s=0.0002)
    errors = []

    def worker(tid):
        try:
            for i in range(40):
                record = log.append(W(tid % 3, (tid * 11 + i) % 16, i))
                log.force(up_to=record.lsn)
                if log.flushed_lsn < record.lsn:
                    errors.append(
                        f"force returned with lsn {record.lsn} above "
                        f"frontier {log.flushed_lsn}"
                    )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(repr(exc))

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert log.flushed_lsn == log.end_lsn == 240
    assert [r.lsn for r in log.merge_scan()] == list(range(1, 241))


def test_group_commit_coalesces_and_records_batch_sizes():
    from repro.sim.metrics import Metrics

    log = MultiLogManager(streams=2, auto_force=False, group_commit=True,
                          force_delay_s=0.0005)
    log.metrics = Metrics()
    barrier = threading.Barrier(4)

    def worker(tid):
        barrier.wait()
        for i in range(10):
            log.append(W(tid % 2, tid * 7 + i, i))
            log.force()

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    m = log.metrics
    assert m.group_commit_ticks == log.epoch > 0
    # Fewer device syncs than forces that found work => coalescing.
    assert m.group_commit_ticks < 40
    assert sum(m.force_batch_sizes.values()) == m.group_commit_ticks
    assert m.group_commit_coalesced == sum(
        (batch - 1) * n for batch, n in m.force_batch_sizes.items()
    )


def test_group_commit_emits_log_force_events_with_batch():
    log = MultiLogManager(streams=2, auto_force=False, group_commit=True)
    tracer = Tracer()
    log.tracer = tracer
    fill(log, 10)
    log.force()
    events = [e for e in tracer.events if e.kind == "log_force"]
    assert len(events) == 1
    assert events[0].get("batch") == 1
    assert events[0].get("lsn") == 10


def test_per_caller_mode_pays_one_sync_per_forcing_caller():
    from repro.sim.metrics import Metrics

    log = MultiLogManager(streams=1, auto_force=False, group_commit=False)
    log.metrics = Metrics()
    for i in range(5):
        log.append(W(0, i, i))
        log.force()
    assert log.metrics.group_commit_ticks == 5
    assert log.metrics.group_commit_coalesced == 0


# ------------------------------------------------------------- serialization


def test_format2_round_trip(tmp_path):
    log = MultiLogManager(streams=4)
    fill(log, 60)
    log.append(IdentityWrite(PageId(1, 2), ("x",)))
    log.force()
    path = str(tmp_path / "striped.log")
    save_log(log, path)
    loaded = load_log(path)
    assert isinstance(loaded, MultiLogManager)
    assert loaded.num_streams == 4
    assert loaded.end_lsn == log.end_lsn
    assert loaded.flushed_lsn == log.flushed_lsn
    original = [(r.lsn, r.stream_id, r.kind) for r in log.merge_scan()]
    restored = [(r.lsn, r.stream_id, r.kind) for r in loaded.merge_scan()]
    assert restored == original
    assert loaded.stats.records == log.stats.records
    assert loaded.stats.iwof_records == log.stats.iwof_records
    # Appends continue from the original sequence.
    record = loaded.append(W(0, 1))
    assert record.lsn == log.end_lsn + 1


def test_format2_ships_only_the_durable_consistent_cut(tmp_path):
    log = MultiLogManager(streams=4, auto_force=False, group_commit=False)
    fill(log, 50)
    log.force(up_to=30)
    frontier = log.flushed_lsn
    path = str(tmp_path / "striped.log")
    save_log(log, path)
    loaded = load_log(path)
    assert loaded.end_lsn == frontier
    assert [r.lsn for r in loaded.merge_scan()] == list(
        range(1, frontier + 1)
    )


def test_format2_repair_tail_cuts_at_corrupt_record(tmp_path):
    import json

    log = MultiLogManager(streams=4)
    fill(log, 40)
    log.force()
    path = str(tmp_path / "striped.log")
    save_log(log, path)
    with open(path) as fh:
        envelope = json.load(fh)
    # Corrupt a mid-stream record's checksum in the shipped file.
    target_lsn = None
    for stream_env in envelope["streams"]:
        if len(stream_env["records"]) > 2:
            spec = stream_env["records"][1]
            spec["crc"] = (spec["crc"] + 1) % (2 ** 32)
            target_lsn = spec["lsn"]
            break
    with open(path, "w") as fh:
        json.dump(envelope, fh)
    with pytest.raises(Exception):
        load_log(path)
    loaded = load_log(path, repair_tail=True)
    assert loaded.end_lsn < target_lsn
    assert [r.lsn for r in loaded.merge_scan()] == list(
        range(1, loaded.end_lsn + 1)
    )
    assert loaded.tail_repair_dropped == 40 - loaded.end_lsn


def test_single_stream_files_stay_format1(tmp_path):
    import json

    from repro.wal.log_manager import LogManager

    log = LogManager()
    for i in range(10):
        log.append(W(0, i % 8, i))
    path = str(tmp_path / "plain.log")
    save_log(log, path)
    with open(path) as fh:
        envelope = json.load(fh)
    assert envelope["format"] == 1
    loaded = load_log(path)
    assert loaded.stats.records == 10  # loader maintains incremental stats
    assert loaded.count() == 10


def test_stream_repr_and_lengths():
    log = MultiLogManager(streams=3)
    fill(log, 9)
    lengths = log.stream_lengths()
    assert sum(lengths.values()) == 9
    assert "MultiLogManager" in repr(log)
    assert "LogStream" in repr(log.streams[0])
    assert isinstance(log.streams[0], LogStream)
