"""Unit tests for the file-backed storage backend.

Covers what the backend-conformance suite cannot: the on-disk artifacts
themselves (page files, the doublewrite journal, per-stream WAL files),
the process-pool sweep's shared-nothing span readers, byte-identity of
sealed archives across backends and executors, and the format-2
streaming archive verifier.
"""

import json
import os

import pytest

from repro.core.config import BackupConfig
from repro.db import Database
from repro.errors import BackupError
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.storage.archive import (
    FORMAT_VERSION,
    _encode,
    load_backup,
    save_backup,
    scan_archive,
    verify_archive,
)
from repro.storage.file_backend import (
    CORRUPT,
    OK,
    FileLogDevice,
    FileStableDatabase,
    read_span_file,
)
from repro.storage.layout import Layout
from repro.storage.page import PageVersion
from repro.wal.multi_log import MultiLogManager
from repro.wal.serialize import record_from_spec
from repro.workloads import mixed_logical_workload


def pid(slot, partition=0):
    return PageId(partition, slot)


@pytest.fixture
def stable(tmp_path):
    db = FileStableDatabase(Layout([8]), initial_value=(),
                            data_dir=str(tmp_path))
    yield db
    db.close()


class TestFileStableDatabase:
    def test_writes_land_on_disk(self, stable, tmp_path):
        stable.write_page(pid(1), ("v",), 5)
        path = os.path.join(str(tmp_path), "stable", "p0000.pages")
        assert os.path.getsize(path) > 0

    def test_span_reader_round_trip(self, stable):
        for slot in range(8):
            stable.write_page(pid(slot), ("r", slot), slot + 1)
        path, entries = stable.span_task(0, 0, 8)
        rows = read_span_file(path, entries)
        assert [status for _, status, _, _ in rows] == [OK] * 8
        for slot, status, value, lsn in rows:
            assert value == ("r", slot)
            assert lsn == slot + 1

    def test_span_reader_sees_consistent_snapshot(self, stable):
        """Old offsets stay valid in the log-structured page file: a
        write after planning must not change what the span reads."""
        for slot in range(8):
            stable.write_page(pid(slot), ("old", slot), 1)
        path, entries = stable.span_task(0, 0, 8)
        stable.write_page(pid(3), ("new", 3), 2)
        rows = read_span_file(path, entries)
        assert rows[3][2] == ("old", 3)

    def test_bitrot_detected_through_file(self, stable):
        import random

        stable.write_page(pid(2), ("payload",), 7)
        rotted = stable._bitrot(random.Random(0))
        assert rotted
        path, entries = stable.span_task(0, 0, 8)
        rows = read_span_file(path, entries)
        statuses = {slot: status for slot, status, _, _ in rows}
        assert CORRUPT in statuses.values()

    def test_restore_from_rewrites_files(self, stable):
        for slot in range(8):
            stable.write_page(pid(slot), ("pre", slot), 1)
        stable.fail_media()
        stable.restore_from(
            {pid(slot): PageVersion(("post", slot), 2) for slot in range(8)},
            initial_value=(),
        )
        path, entries = stable.span_task(0, 0, 8)
        rows = read_span_file(path, entries)
        for slot, status, value, lsn in rows:
            assert status == OK
            assert value == ("post", slot)


class TestFileLogDevice:
    def _log(self, tmp_path, streams=2):
        log = MultiLogManager(streams=streams, auto_force=False,
                              group_commit=True, force_delay_s=0.0)
        device = FileLogDevice(str(tmp_path / "wal"), streams=streams)
        log.attach_device(device)
        return log, device

    def test_durability_cut(self, tmp_path):
        """Appends buffer in memory; only sync makes them durable."""
        log, device = self._log(tmp_path)
        for i in range(6):
            log.append(PhysicalWrite(pid(i % 4), ("r", i)))
        sizes = [os.path.getsize(p) for p in device.paths]
        assert sizes == [0, 0]
        log.force()
        assert device.syncs == 1
        assert sum(os.path.getsize(p) for p in device.paths) > 0

    def test_file_records_parse_back(self, tmp_path):
        log, device = self._log(tmp_path)
        for i in range(6):
            log.append(PhysicalWrite(pid(i % 4), ("r", i)))
        log.force()
        lsns = []
        for path in device.paths:
            with open(path) as fh:
                for line in fh:
                    record = record_from_spec(json.loads(line))
                    lsns.append(record.lsn)
        assert sorted(lsns) == [1, 2, 3, 4, 5, 6]

    def test_drop_pending_discards_unforced(self, tmp_path):
        log, device = self._log(tmp_path)
        log.append(PhysicalWrite(pid(0), ("kept",)))
        log.force()
        log.append(PhysicalWrite(pid(1), ("lost",)))
        log.discard_unflushed()
        device.sync()
        total_lines = 0
        for path in device.paths:
            with open(path) as fh:
                total_lines += sum(1 for _ in fh)
        assert total_lines == 1


class TestSealedBackupByteIdentity:
    def _archive_bytes(self, tmp_path, name, backend, executor):
        data_dir = str(tmp_path / name)
        db = Database(pages_per_partition=[8, 8, 8, 8], policy="general",
                      backend=backend, data_dir=data_dir)
        source = mixed_logical_workload(db.layout, seed=11, count=40)
        cfg = BackupConfig(steps=4, batched=True, workers=4,
                           backend=backend, executor=executor,
                           data_dir=data_dir if backend == "file" else None)
        db.start_backup(cfg)
        while db.backup_in_progress():
            db.backup_step(16)
            op = next(source, None)
            if op is not None:
                db.execute(op)
            db.install_some(2)
        backup = db.latest_backup()
        path = str(tmp_path / f"{name}.jsonl")
        save_backup(backup, path)
        db.close()
        with open(path, "rb") as fh:
            return fh.read()

    def test_identical_across_backends_and_executors(self, tmp_path):
        """The same seeded run seals byte-identical archives on the
        memory backend, the file backend with the thread pool, and the
        file backend with the process pool."""
        memory = self._archive_bytes(tmp_path, "mem", "memory", "thread")
        file_thread = self._archive_bytes(tmp_path, "ft", "file", "thread")
        file_process = self._archive_bytes(tmp_path, "fp", "file", "process")
        assert memory == file_thread
        assert file_thread == file_process


class TestProcessExecutorValidation:
    def test_process_executor_requires_file_stable(self):
        db = Database(pages_per_partition=[8, 8], policy="general")
        with pytest.raises(BackupError):
            db.engine.start_backup(workers=2, executor="process")


class TestStreamingArchive:
    def _sealed(self, tmp_path):
        db = Database(pages_per_partition=[8], policy="general")
        for slot in range(8):
            db.execute(PhysicalWrite(pid(slot), ("r", slot)))
        db.checkpoint()
        db.start_backup(BackupConfig(steps=2))
        return db.run_backup()

    def test_format_2_is_jsonl(self, tmp_path):
        backup = self._sealed(tmp_path)
        path = str(tmp_path / "a.jsonl")
        save_backup(backup, path)
        with open(path) as fh:
            lines = fh.readlines()
        header = json.loads(lines[0])
        assert header["format"] == FORMAT_VERSION
        assert header["page_count"] == len(lines) - 1
        for line in lines[1:]:
            entry = json.loads(line)
            assert {"partition", "slot", "lsn", "value", "crc"} <= set(entry)

    def test_verify_archive_streams_and_counts_bytes(self, tmp_path):
        backup = self._sealed(tmp_path)
        path = str(tmp_path / "a.jsonl")
        written = save_backup(backup, path)
        audit = verify_archive(path)
        assert audit.ok
        assert audit.pages_scanned == backup.copied_count()
        assert audit.bytes_scanned == written == os.path.getsize(path)

    def test_verify_archive_flags_tampering(self, tmp_path):
        backup = self._sealed(tmp_path)
        path = str(tmp_path / "a.jsonl")
        save_backup(backup, path)
        with open(path) as fh:
            text = fh.read()
        with open(path, "w") as fh:
            fh.write(text.replace('["r",0]', '["x",0]', 1))
        audit = verify_archive(path)
        assert not audit.ok
        assert len(audit.damaged) == 1

    def test_truncated_archive_rejected(self, tmp_path):
        backup = self._sealed(tmp_path)
        path = str(tmp_path / "a.jsonl")
        save_backup(backup, path)
        with open(path) as fh:
            lines = fh.readlines()
        with open(path, "w") as fh:
            fh.writelines(lines[:-2])
        with pytest.raises(BackupError):
            verify_archive(path)

    def test_legacy_format_1_still_loads(self, tmp_path):
        backup = self._sealed(tmp_path)
        envelope = {
            "format": 1,
            "backup_id": backup.backup_id,
            "media_scan_start_lsn": backup.media_scan_start_lsn,
            "completion_lsn": backup.completion_lsn,
            "base_backup_id": None,
            "pages": [
                {
                    "partition": p.partition,
                    "slot": p.slot,
                    "lsn": v.page_lsn,
                    "value": _encode(v.value),
                    "crc": backup.stored_checksum(p),
                }
                for p, v in sorted(backup.pages().items())
            ],
        }
        path = str(tmp_path / "legacy.json")
        with open(path, "w") as fh:
            json.dump(envelope, fh)
        loaded = load_backup(path)
        assert loaded.pages() == backup.pages()
        audit = verify_archive(path)
        assert audit.ok and audit.pages_scanned == backup.copied_count()
