"""Unit tests for the text reporting helpers."""

from repro.harness.reporting import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 44]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}
        # Columns align: every line same width.
        assert len({len(line) for line in lines}) == 1

    def test_floats_formatted(self):
        out = format_table(["x"], [[0.123456]])
        assert "0.1235" in out

    def test_wide_cells_stretch_columns(self):
        out = format_table(["h"], [["wide-content-here"]])
        assert "wide-content-here" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert out.splitlines()[0].split() == ["a", "b"]


class TestFormatSeries:
    def test_titled_pairs(self):
        out = format_series("curve", [(1, 0.5), (2, 0.25)])
        lines = out.splitlines()
        assert lines[0] == "curve"
        assert "0.5000" in lines[1]
        assert "0.2500" in lines[2]
