"""Unit tests for pages and page versions."""

import pytest

from repro.ids import NULL_LSN, PageId
from repro.storage.page import Page, PageVersion, check_value


class TestCheckValue:
    def test_accepts_immutables(self):
        for value in (None, 1, 1.5, "s", b"b", (1, 2), frozenset({1})):
            assert check_value(value) == value

    @pytest.mark.parametrize("bad", [[1], {"a": 1}, {1, 2}, bytearray(b"x")])
    def test_rejects_mutables(self, bad):
        with pytest.raises(TypeError):
            check_value(bad)


class TestPageVersion:
    def test_defaults_to_null_lsn(self):
        assert PageVersion("v").page_lsn == NULL_LSN

    def test_with_update_returns_new_version(self):
        v1 = PageVersion("a", 1)
        v2 = v1.with_update("b", 2)
        assert (v1.value, v1.page_lsn) == ("a", 1)
        assert (v2.value, v2.page_lsn) == ("b", 2)

    def test_negative_lsn_rejected(self):
        with pytest.raises(ValueError):
            PageVersion("v", -1)


class TestPage:
    def test_empty_page(self):
        page = Page.empty(PageId(0, 0), initial_value=())
        assert page.value == ()
        assert page.page_lsn == NULL_LSN

    def test_update_stamps_lsn(self):
        page = Page.empty(PageId(0, 0))
        page.update(("x",), 7)
        assert page.value == ("x",)
        assert page.page_lsn == 7

    def test_snapshot_is_immutable_view(self):
        page = Page.empty(PageId(0, 0))
        snap = page.snapshot()
        page.update("new", 3)
        assert snap.value is None
        assert page.snapshot().value == "new"
