"""Unit tests for the media-log view and record flags."""

from repro.ids import PageId
from repro.ops.identity import IdentityWrite
from repro.ops.physical import PhysicalWrite
from repro.wal.log_manager import LogManager
from repro.wal.media_log import MediaLogView
from repro.wal.records import RecordFlag


def test_media_log_is_suffix_view():
    log = LogManager()
    for i in range(6):
        log.append(PhysicalWrite(PageId(0, i), i))
    view = MediaLogView(log, scan_start_lsn=4)
    assert [r.lsn for r in view.scan()] == [4, 5, 6]
    assert view.record_count() == 3


def test_media_log_sees_iwof_records():
    log = LogManager()
    log.append(PhysicalWrite(PageId(0, 0), 1))
    log.append(
        IdentityWrite(PageId(0, 0), 1),
        RecordFlag.CM_INJECTED | RecordFlag.IWOF,
    )
    view = MediaLogView(log, scan_start_lsn=1)
    assert view.iwof_count() == 1
    assert view.iwof_bytes() > 0
    assert view.bytes_total() >= view.iwof_bytes()


def test_record_flags():
    log = LogManager()
    plain = log.append(PhysicalWrite(PageId(0, 0), 1))
    injected = log.append(
        IdentityWrite(PageId(0, 0), 1), RecordFlag.CM_INJECTED
    )
    iwof = log.append(
        IdentityWrite(PageId(0, 0), 1),
        RecordFlag.CM_INJECTED | RecordFlag.IWOF,
    )
    assert not plain.is_cm_injected and not plain.is_iwof
    assert injected.is_cm_injected and not injected.is_iwof
    assert iwof.is_cm_injected and iwof.is_iwof
    assert "*" in repr(iwof)
