"""Unit tests for tree-operation successor metadata (section 4.2)."""

import pytest

from repro.core.tree_meta import TreeMeta, TreeOpTracker
from repro.ids import PageId
from repro.ops.physiological import PhysiologicalWrite
from repro.ops.tree import MovRec, WriteNew
from repro.storage.layout import MIN_POS, Layout
from repro.wal.log_manager import LogManager


def pid(slot, partition=0):
    return PageId(partition, slot)


@pytest.fixture
def tracker():
    return TreeOpTracker(Layout([64, 64]))


def observe(tracker, op):
    log = LogManager()
    tracker.observe(log.append(op))


class TestSuccessorTracking:
    def test_untracked_page_has_no_successors(self, tracker):
        meta = tracker.meta(pid(5))
        assert meta.max_succ == MIN_POS
        assert not meta.violation
        assert not meta.has_successors

    def test_write_new_records_old_as_successor(self, tracker):
        observe(tracker, WriteNew(pid(30), pid(10)))
        meta = tracker.meta(pid(10))
        assert meta.max_succ == 30
        assert meta.has_successors

    def test_violation_when_new_precedes_old(self, tracker):
        """#new < #old means the † property cannot hold."""
        observe(tracker, WriteNew(pid(30), pid(10)))
        assert tracker.meta(pid(10)).violation

    def test_no_violation_when_new_follows_old(self, tracker):
        observe(tracker, WriteNew(pid(10), pid(30)))
        meta = tracker.meta(pid(30))
        assert meta.max_succ == 10
        assert not meta.violation

    def test_max_propagates_transitively(self, tracker):
        """MAX(X) = max(#Y, MAX(Y)) — incremental computation."""
        observe(tracker, WriteNew(pid(50), pid(40)))   # S(40) = {50}
        observe(tracker, WriteNew(pid(40), pid(30)))   # S(30) ∋ 40, MAX(40)=50
        assert tracker.meta(pid(30)).max_succ == 50

    def test_violation_propagates_from_successor(self, tracker):
        observe(tracker, WriteNew(pid(20), pid(10)))   # violation(10)
        observe(tracker, WriteNew(pid(10), pid(60)))   # 60 > 10 but v(10) set
        assert tracker.meta(pid(60)).violation

    def test_movrec_is_tracked(self, tracker):
        observe(tracker, MovRec(pid(5), 3, pid(40)))
        assert tracker.meta(pid(40)).max_succ == 5

    def test_page_oriented_ops_ignored(self, tracker):
        observe(tracker, PhysiologicalWrite(pid(7), "increment"))
        assert not tracker.meta(pid(7)).has_successors
        assert tracker.tracked_count() == 0


class TestCrossPartition:
    def test_cross_partition_is_conservative(self, tracker):
        observe(tracker, WriteNew(pid(5, partition=1), pid(10, partition=0)))
        meta = tracker.meta(pid(10, partition=0))
        assert meta.violation
        assert meta.max_succ == 64  # the partition's Max sentinel


class TestClearing:
    def test_clear_on_install(self, tracker):
        observe(tracker, WriteNew(pid(10), pid(30)))
        tracker.clear(pid(30))
        assert not tracker.meta(pid(30)).has_successors
        assert tracker.tracked_count() == 0
