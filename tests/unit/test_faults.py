"""Unit tests for the fault plane and its device integrations."""

import random

import pytest

from repro.core.config import BackupConfig
from repro.db import Database
from repro.errors import (
    ReproError,
    SimulatedCrash,
    TornWriteError,
    TransientIOError,
)
from repro.ids import PageId
from repro.ops.logical import CopyOp
from repro.ops.physical import PhysicalWrite
from repro.sim.failure import FailureInjector, IOFaultPlan, crash_sweep_plans
from repro.sim.faults import (
    DEFAULT_RETRY,
    FaultKind,
    FaultPlane,
    FaultSpec,
    IOPoint,
    RetryPolicy,
    seeded_fault_specs,
    with_retries,
)
from repro.sim.metrics import Metrics


def pid(slot, partition=0):
    return PageId(partition, slot)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ReproError):
            FaultSpec("gremlins")
        with pytest.raises(ReproError):
            FaultSpec(FaultKind.CRASH, point="disk.nope")
        with pytest.raises(ReproError):
            FaultSpec(FaultKind.CRASH, at_io=0)
        with pytest.raises(ReproError):
            FaultSpec(FaultKind.TRANSIENT, times=0)

    def test_io_fault_plan_roundtrip(self):
        plan = IOFaultPlan(at_io=3, kind=FaultKind.TORN,
                           point=IOPoint.STABLE_MULTI_WRITE, keep=2)
        spec = plan.to_spec()
        assert spec.at_io == 3 and spec.keep == 2
        with pytest.raises(ReproError):
            IOFaultPlan(at_io=0)


class TestFaultPlane:
    def test_bare_plane_counts(self):
        plane = FaultPlane()
        for _ in range(3):
            assert plane.check(IOPoint.LOG_APPEND) is None
        plane.check(IOPoint.STABLE_READ)
        assert plane.io_count == 4
        assert plane.count_by_point[IOPoint.LOG_APPEND] == 3
        assert plane.injected_total == 0

    def test_crash_fires_once_at_global_index(self):
        plane = FaultPlane([FaultSpec(FaultKind.CRASH, at_io=2)])
        plane.check(IOPoint.LOG_APPEND)
        with pytest.raises(SimulatedCrash) as info:
            plane.check(IOPoint.STABLE_READ)
        assert info.value.io_index == 2
        # Fired specs stay quiet afterwards.
        plane.check(IOPoint.STABLE_READ)
        assert plane.injected_by_kind == {FaultKind.CRASH: 1}

    def test_point_specific_counter(self):
        plane = FaultPlane(
            [FaultSpec(FaultKind.CRASH, point=IOPoint.LOG_FORCE, at_io=2)]
        )
        plane.check(IOPoint.LOG_APPEND)
        plane.check(IOPoint.LOG_APPEND)
        plane.check(IOPoint.LOG_FORCE)  # force #1: not due yet
        with pytest.raises(SimulatedCrash):
            plane.check(IOPoint.LOG_FORCE)

    def test_transient_repeats_times_then_stops(self):
        plane = FaultPlane([FaultSpec(FaultKind.TRANSIENT, at_io=1, times=2)])
        for _ in range(2):
            with pytest.raises(TransientIOError):
                plane.check(IOPoint.STABLE_READ)
        assert plane.check(IOPoint.STABLE_READ) is None
        assert plane.injected_by_kind == {FaultKind.TRANSIENT: 2}

    def test_torn_waits_for_multipart_write(self):
        plane = FaultPlane([FaultSpec(FaultKind.TORN, at_io=1, keep=1)])
        # Single-part writes are atomic; the tear stays armed.
        assert plane.check(IOPoint.STABLE_MULTI_WRITE, parts=1) is None
        assert plane.check(IOPoint.STABLE_MULTI_WRITE, parts=3) == 1
        assert plane.check(IOPoint.STABLE_MULTI_WRITE, parts=3) is None

    def test_torn_keep_clamped_below_parts(self):
        plane = FaultPlane([FaultSpec(FaultKind.TORN, at_io=1, keep=9)])
        assert plane.check(IOPoint.BACKUP_BULK_RECORD, parts=4) == 3

    def test_suspension_stops_counting_and_firing(self):
        plane = FaultPlane([FaultSpec(FaultKind.CRASH, at_io=1)])
        with plane.suspended():
            assert plane.check(IOPoint.STABLE_READ) is None
        assert plane.io_count == 0
        with pytest.raises(SimulatedCrash):
            plane.check(IOPoint.STABLE_READ)

    def test_metrics_mirroring(self):
        metrics = Metrics()
        plane = FaultPlane(
            [FaultSpec(FaultKind.TRANSIENT, at_io=1)], metrics=metrics
        )
        with pytest.raises(TransientIOError):
            plane.check(IOPoint.LOG_APPEND)
        assert metrics.faults_injected == {FaultKind.TRANSIENT: 1}

    def test_seeded_specs_deterministic(self):
        a = seeded_fault_specs(random.Random(7), io_budget=100, count=5)
        b = seeded_fault_specs(random.Random(7), io_budget=100, count=5)
        assert a == b
        assert all(s.kind != FaultKind.CRASH for s in a)

    def test_crash_sweep_plans(self):
        plans = crash_sweep_plans(10, stride=3)
        assert [p.at_io for p in plans] == [1, 4, 7, 10]
        with pytest.raises(ReproError):
            crash_sweep_plans(0)


class TestWithRetries:
    def test_absorbs_bounded_transients(self):
        metrics = Metrics()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientIOError("stable.read_page", len(attempts))
            return "done"

        assert with_retries(flaky, metrics=metrics) == "done"
        assert metrics.io_retries == 2
        assert metrics.simulated_backoff_s == pytest.approx(
            DEFAULT_RETRY.backoff_for(1) + DEFAULT_RETRY.backoff_for(2)
        )

    def test_gives_up_after_max_attempts(self):
        policy = RetryPolicy(max_attempts=2)

        def always():
            raise TransientIOError("log.append", 1)

        with pytest.raises(TransientIOError):
            with_retries(always, policy=policy)

    def test_other_errors_pass_through(self):
        def crash():
            raise SimulatedCrash("log.force", 1)

        with pytest.raises(SimulatedCrash):
            with_retries(crash)

    def test_final_attempt_propagation_still_counts_earlier_retries(self):
        """Exhausting the policy propagates the transient, but the
        retries that were burned must still be accounted for."""
        metrics = Metrics()
        policy = RetryPolicy(max_attempts=3)
        attempts = []

        def always():
            attempts.append(1)
            raise TransientIOError("stable.read_page", len(attempts))

        with pytest.raises(TransientIOError):
            with_retries(always, policy=policy, metrics=metrics)
        assert len(attempts) == policy.max_attempts
        # max_attempts - 1 retries, each with its simulated backoff; the
        # final failing attempt adds neither.
        assert metrics.io_retries == 2
        assert metrics.simulated_backoff_s == pytest.approx(
            policy.backoff_for(1) + policy.backoff_for(2)
        )

    def test_non_transient_error_never_absorbed_nor_counted(self):
        metrics = Metrics()
        attempts = []

        def bad():
            attempts.append(1)
            raise ValueError("not an I/O fault")

        with pytest.raises(ValueError):
            with_retries(bad, metrics=metrics)
        assert len(attempts) == 1  # no retry of a non-transient error
        assert metrics.io_retries == 0
        assert metrics.simulated_backoff_s == 0.0

    def test_first_try_success_records_nothing(self):
        metrics = Metrics()
        assert with_retries(lambda: 42, metrics=metrics) == 42
        assert metrics.io_retries == 0
        assert metrics.simulated_backoff_s == 0.0

    def test_works_without_metrics(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 2:
                raise TransientIOError("log.append", 1)
            return "ok"

        assert with_retries(flaky) == "ok"

    def test_backoff_schedule_is_exponential(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.001,
                             multiplier=2.0)
        assert [policy.backoff_for(i) for i in (1, 2, 3)] == pytest.approx(
            [0.001, 0.002, 0.004]
        )


class TestDeviceIntegration:
    def _db(self, specs=()):
        db = Database(pages_per_partition=[16], policy="general")
        db.attach_faults(FaultPlane(list(specs)))
        return db

    def test_transient_log_append_survived(self):
        db = self._db(
            [FaultSpec(FaultKind.TRANSIENT, point=IOPoint.LOG_APPEND,
                       at_io=1, times=2)]
        )
        db.execute(PhysicalWrite(pid(0), "a"))
        assert db.metrics.io_retries == 2
        assert db.read(pid(0)) == "a"

    def test_transient_exhaustion_propagates(self):
        db = self._db(
            [FaultSpec(FaultKind.TRANSIENT, point=IOPoint.LOG_APPEND,
                       at_io=1, times=10)]
        )
        with pytest.raises(TransientIOError):
            db.execute(PhysicalWrite(pid(0), "a"))

    def test_torn_multi_write_rolled_back_by_shadow(self):
        from repro.ops.logical import GeneralLogicalOp

        db = self._db()
        db.execute(PhysicalWrite(pid(0), "s"))
        # One operation writing two pages: its write-graph node installs
        # both atomically — the multi-page write a tear can break.
        db.execute(
            GeneralLogicalOp([pid(0)], [pid(1), pid(2)], "concat_sorted",
                             per_target=False)
        )
        db.faults.arm(
            FaultSpec(FaultKind.TORN, point=IOPoint.STABLE_MULTI_WRITE,
                      at_io=1, keep=1)
        )
        with pytest.raises(SimulatedCrash) as info:
            db.install_some(10, random.Random(0))
        assert info.value.torn
        db.crash()
        outcome = db.recover()
        assert outcome.ok and not outcome.diffs
        assert db.metrics.torn_writes_repaired > 0
        assert db.read(pid(1)) == db.oracle.value(pid(1))

    def test_torn_backup_span_resumed(self):
        db = self._db(
            [FaultSpec(FaultKind.TORN, point=IOPoint.BACKUP_BULK_RECORD,
                       at_io=1, keep=1)]
        )
        for slot in range(8):
            db.execute(PhysicalWrite(pid(slot), slot))
        db.start_backup(BackupConfig(steps=2, batched=True))
        backup = db.run_backup()
        assert backup.is_complete
        assert db.metrics.torn_spans_resumed >= 1
        db.media_failure()
        assert db.media_recover(backup=backup).ok

    def test_crash_mid_backup_then_crash_recovery(self):
        db = self._db([FaultSpec(FaultKind.CRASH, at_io=12)])
        rng = random.Random(0)
        with pytest.raises(SimulatedCrash):
            for slot in range(12):
                db.execute(PhysicalWrite(pid(slot % 8), slot))
                db.install_some(1, rng)
        db.crash()
        outcome = db.recover()
        assert outcome.ok
        assert outcome.faults_survived == 1
        assert outcome.kind == "crash"

    def test_recovery_suspends_injection(self):
        # A crash spec due on the very next I/O must not fire during
        # recovery's own reads and installs.
        db = self._db()
        db.execute(PhysicalWrite(pid(0), "a"))
        db.crash()
        db.faults.arm(FaultSpec(FaultKind.CRASH, at_io=db.faults.io_count + 1))
        assert db.recover().ok

    def test_injector_arms_io_plans(self):
        db = Database(pages_per_partition=[16], policy="general")
        injector = FailureInjector(
            db, [IOFaultPlan(at_io=1, kind=FaultKind.TRANSIENT,
                             point=IOPoint.LOG_APPEND)]
        )
        db.execute(PhysicalWrite(pid(0), "a"))
        assert injector.faults_injected == 1
        assert db.metrics.io_retries == 1

    def test_injector_seeded_is_deterministic(self):
        def run():
            db = Database(pages_per_partition=[16], policy="general")
            FailureInjector.seeded(db, seed=5, io_budget=40, count=3)
            return [s for s in db.faults.pending_specs]

        assert run() == run()
