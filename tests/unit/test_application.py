"""Unit tests for application recovery operations (sections 1.1, 6.2)."""

import pytest

from repro.appfs.application import (
    AppExec,
    AppRead,
    AppWrite,
    ApplicationManager,
)
from repro.db import Database
from repro.errors import OperationError, ReproError
from repro.ids import PageId


@pytest.fixture
def db():
    return Database(pages_per_partition=[32], policy="tree")


def pid(slot):
    return PageId(0, slot)


class TestAppOps:
    def test_exec_transforms_state(self):
        op = AppExec(pid(1), "step1")
        assert op.apply({pid(1): ("init",)}) == {
            pid(1): ("exec", "step1", ("init",))
        }
        assert op.readset == op.writeset == {pid(1)}

    def test_read_combines_state_and_input(self):
        op = AppRead(pid(0), pid(1))
        result = op.apply({pid(0): "data", pid(1): ("init",)})
        assert result == {pid(1): ("read", "data", ("init",))}
        assert op.readset == {pid(0), pid(1)}
        assert op.writeset == {pid(1)}

    def test_read_logs_identifiers_only(self):
        assert AppRead(pid(0), pid(1)).log_record_size() < 64

    def test_read_successor_pair(self):
        """X's next change must flush after A (section 6.2)."""
        op = AppRead(pid(0), pid(1))
        assert op.successor_pairs() == ((pid(1), pid(0)),)

    def test_self_read_rejected(self):
        with pytest.raises(OperationError):
            AppRead(pid(1), pid(1))

    def test_write_outputs_from_state(self):
        op = AppWrite(pid(1), pid(2))
        result = op.apply({pid(1): ("state",)})
        assert result[pid(2)] == ("derived", "output", ("state",))
        assert op.successor_pairs() == ((pid(2), pid(1)),)


class TestApplicationManager:
    def test_apps_placed_at_partition_end_by_default(self, db):
        manager = ApplicationManager(db, app_slots=2)
        page = manager.launch("a")
        assert page.slot >= db.layout.partition_size(0) - 2

    def test_apps_placed_at_front_on_request(self, db):
        manager = ApplicationManager(db, app_slots=2, at_end=False)
        assert manager.launch("a").slot < 2

    def test_duplicate_launch_rejected(self, db):
        manager = ApplicationManager(db, app_slots=2)
        manager.launch("a")
        with pytest.raises(ReproError):
            manager.launch("a")

    def test_slots_exhaust(self, db):
        manager = ApplicationManager(db, app_slots=1)
        manager.launch("a")
        with pytest.raises(ReproError):
            manager.launch("b")

    def test_state_evolution(self, db):
        manager = ApplicationManager(db, app_slots=1)
        manager.launch("app", initial_state=("init",))
        manager.execute_step("app", "s1")
        state = manager.state_of("app")
        assert state == ("exec", "s1", ("init",))

    def test_read_and_write_roundtrip(self, db):
        manager = ApplicationManager(db, app_slots=1)
        manager.launch("app")
        source, target = pid(3), pid(4)
        from repro.ops.physical import PhysicalWrite

        db.execute(PhysicalWrite(source, "input"))
        manager.read_into("app", source)
        manager.write_out("app", target)
        assert db.read(target)[0] == "derived"

    def test_unknown_app_rejected(self, db):
        manager = ApplicationManager(db)
        with pytest.raises(ReproError):
            manager.state_of("ghost")

    def test_too_many_slots_rejected(self, db):
        with pytest.raises(ReproError):
            ApplicationManager(db, app_slots=99)
