"""Unit tests for incremental backup (section 6.1)."""

import pytest

from repro.core.incremental import run_media_recovery_chain, validate_chain
from repro.db import Database
from repro.errors import NoBackupError, RecoveryError
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite


def pid(slot):
    return PageId(0, slot)


@pytest.fixture
def db():
    database = Database(pages_per_partition=[32], policy="general")
    for slot in range(32):
        database.execute(PhysicalWrite(pid(slot), ("base", slot)))
    database.checkpoint()
    return database


def take_full(db):
    db.start_backup(steps=2)
    return db.run_backup(pages_per_tick=16)


class TestIncrementalCapture:
    def test_requires_base_backup(self, db):
        with pytest.raises(NoBackupError):
            db.start_backup(incremental=True)

    def test_copies_only_updated_pages(self, db):
        take_full(db)
        for slot in (3, 7, 11):
            db.execute(PhysiologicalWrite(pid(slot), "stamp", ("inc",)))
        db.start_backup(steps=2, incremental=True)
        incremental = db.run_backup(pages_per_tick=16)
        assert set(incremental.copy_order()) == {pid(3), pid(7), pid(11)}
        assert incremental.base_backup_id == 1

    def test_update_set_resets_per_backup(self, db):
        take_full(db)
        db.execute(PhysiologicalWrite(pid(1), "stamp", ("a",)))
        db.start_backup(steps=2, incremental=True)
        db.run_backup()
        db.execute(PhysiologicalWrite(pid(2), "stamp", ("b",)))
        db.start_backup(steps=2, incremental=True)
        second = db.run_backup()
        assert set(second.copy_order()) == {pid(2)}

    def test_page_dirtied_during_sweep_dynamically_extends(self, db):
        """A pending-region page updated+flushed mid-sweep joins the
        copy set (dynamic extension), keeping Pend truthful."""
        take_full(db)
        db.execute(PhysiologicalWrite(pid(0), "stamp", ("seed",)))
        db.start_backup(steps=4, incremental=True)
        db.backup_step(1)
        db.execute(PhysiologicalWrite(pid(30), "stamp", ("late",)))
        db.flush_page(pid(30))  # pending & outside set -> extended
        incremental = db.run_backup()
        assert pid(30) in incremental
        assert db.metrics.iwof_records == 0

    def test_without_dynamic_extension_iwof_covers_it(self, db):
        take_full(db)
        db.execute(PhysiologicalWrite(pid(0), "stamp", ("seed",)))
        db.start_backup(steps=4, incremental=True, dynamic_extend=False)
        db.backup_step(1)
        db.execute(PhysiologicalWrite(pid(30), "stamp", ("late",)))
        db.flush_page(pid(30))
        incremental = db.run_backup()
        assert pid(30) not in incremental
        assert db.metrics.iwof_records == 1  # value went to the log instead


class TestChainValidation:
    def test_empty_chain_rejected(self):
        with pytest.raises(NoBackupError):
            validate_chain([])

    def test_incomplete_backup_rejected(self, db):
        db.start_backup(steps=2)
        run = db.engine.active
        with pytest.raises(NoBackupError):
            validate_chain([run.backup])
        db.run_backup()

    def test_incremental_base_must_be_full(self, db):
        take_full(db)
        db.execute(PhysiologicalWrite(pid(1), "stamp", ("a",)))
        db.start_backup(steps=2, incremental=True)
        incremental = db.run_backup()
        with pytest.raises(RecoveryError):
            validate_chain([incremental])

    def test_full_cannot_be_a_link(self, db):
        full1 = take_full(db)
        full2 = take_full(db)
        with pytest.raises(RecoveryError):
            validate_chain([full1, full2])


class TestChainRestore:
    def test_full_plus_incremental_restores(self, db):
        full = take_full(db)
        for slot in (3, 7):
            db.execute(PhysiologicalWrite(pid(slot), "stamp", ("inc",)))
        db.start_backup(steps=2, incremental=True)
        incremental = db.run_backup()
        db.media_failure()
        outcome = db.media_recover_chain([full, incremental])
        assert outcome.ok

    def test_chain_replay_covers_earlier_links_windows(self, db):
        """Regression: an update captured only by an EARLIER link's
        media-log window must survive a chain restore.

        The page is updated during the full backup but stays dirty past
        the full's copy of it (stale image); it is flushed before the
        incremental begins, so the incremental's scan start is past the
        update record and its copy set does not include the page.  Only
        replay from the FULL's scan start recovers it."""
        take_full(db)
        # Update during... simulate by updating after the full and
        # flushing before the incremental, with nothing else dirty.
        db.execute(PhysiologicalWrite(pid(5), "stamp", ("only-here",)))
        db.start_backup(steps=2, incremental=True)
        first_inc = db.run_backup(pages_per_tick=16)
        # pid(5) flushed now: its recLSN clears before the next link.
        db.flush_page(pid(5))
        db.execute(PhysiologicalWrite(pid(9), "stamp", ("later",)))
        db.start_backup(steps=2, incremental=True)
        second_inc = db.run_backup(pages_per_tick=16)
        assert second_inc.media_scan_start_lsn > first_inc.media_scan_start_lsn
        full = db.engine.completed[0]
        db.media_failure()
        outcome = db.media_recover_chain([full, first_inc, second_inc])
        assert outcome.ok, outcome.diffs[:3]
        assert db.stable.read_page(pid(5)).value[1] == "only-here"

    def test_two_link_chain(self, db):
        full = take_full(db)
        db.execute(PhysiologicalWrite(pid(3), "stamp", ("inc1",)))
        db.start_backup(steps=2, incremental=True)
        inc1 = db.run_backup()
        db.execute(PhysiologicalWrite(pid(9), "stamp", ("inc2",)))
        db.start_backup(steps=2, incremental=True)
        inc2 = db.run_backup()
        db.media_failure()
        outcome = db.media_recover_chain([full, inc1, inc2])
        assert outcome.ok
