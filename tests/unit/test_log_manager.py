"""Unit tests for the log manager and WAL rule."""

import pytest

from repro.errors import LogTruncatedError, WALViolationError
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.wal.log_manager import LogManager
from repro.wal.records import RecordFlag


def wp(slot, value=0):
    return PhysicalWrite(PageId(0, slot), value)


class TestAppend:
    def test_lsns_monotone_from_one(self):
        log = LogManager()
        assert log.append(wp(0)).lsn == 1
        assert log.append(wp(1)).lsn == 2
        assert log.end_lsn == 2
        assert log.next_lsn == 3

    def test_auto_force_default(self):
        log = LogManager()
        log.append(wp(0))
        assert log.flushed_lsn == 1

    def test_manual_force(self):
        log = LogManager(auto_force=False)
        log.append(wp(0))
        log.append(wp(1))
        assert log.flushed_lsn == 0
        log.force(1)
        assert log.flushed_lsn == 1
        log.force()
        assert log.flushed_lsn == 2

    def test_force_never_regresses(self):
        log = LogManager(auto_force=False)
        log.append(wp(0))
        log.force()
        log.force(0)
        assert log.flushed_lsn == 1

    def test_append_listener_invoked(self):
        log = LogManager()
        seen = []
        log.on_append(seen.append)
        record = log.append(wp(0))
        assert seen == [record]


class TestWAL:
    def test_flush_ahead_of_log_rejected(self):
        log = LogManager(auto_force=False)
        record = log.append(wp(0))
        with pytest.raises(WALViolationError):
            log.assert_wal(PageId(0, 0), record.lsn)

    def test_flush_behind_log_ok(self):
        log = LogManager(auto_force=False)
        record = log.append(wp(0))
        log.force()
        log.assert_wal(PageId(0, 0), record.lsn)


class TestScan:
    def test_scan_range(self):
        log = LogManager()
        for i in range(5):
            log.append(wp(i))
        assert [r.lsn for r in log.scan(2, 4)] == [2, 3, 4]
        assert [r.lsn for r in log.scan()] == [1, 2, 3, 4, 5]

    def test_durable_scan_stops_at_flushed(self):
        log = LogManager(auto_force=False)
        log.append(wp(0))
        log.append(wp(1))
        log.force(1)
        log.append(wp(2))
        assert [r.lsn for r in log.durable_scan()] == [1]

    def test_record_at(self):
        log = LogManager()
        log.append(wp(0))
        assert log.record_at(1).lsn == 1
        with pytest.raises(LogTruncatedError):
            log.record_at(2)

    def test_discard_unflushed(self):
        log = LogManager(auto_force=False)
        log.append(wp(0))
        log.force()
        log.append(wp(1))
        log.append(wp(2))
        assert log.discard_unflushed() == 2
        assert log.end_lsn == 1
        # New appends continue from the surviving prefix.
        assert log.append(wp(3)).lsn == 2


class TestStatistics:
    def test_count_with_predicate(self):
        log = LogManager()
        log.append(wp(0), RecordFlag.CM_INJECTED | RecordFlag.IWOF)
        log.append(wp(1))
        assert log.count() == 2
        assert log.iwof_count() == 1

    def test_bytes_logged_positive(self):
        log = LogManager()
        log.append(wp(0, "payload"))
        assert log.bytes_logged() > len("payload")
