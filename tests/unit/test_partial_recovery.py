"""Unit tests for partition-level media recovery (§6.3, direction 2)."""

import pytest

from repro.core.partial_recovery import (
    check_partition_confinement,
    run_partition_media_recovery,
)
from repro.db import Database
from repro.errors import MediaFailureError, NoBackupError, RecoveryError
from repro.ids import PageId
from repro.ops.logical import CopyOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite


@pytest.fixture
def db():
    database = Database(pages_per_partition=[16, 16], policy="general")
    for partition in range(2):
        for slot in range(16):
            database.execute(
                PhysicalWrite(PageId(partition, slot), ("v", partition, slot))
            )
    database.checkpoint()
    database.start_backup(steps=2)
    database.run_backup(pages_per_tick=16)
    return database


class TestConfinementChecker:
    def test_clean_log(self, db):
        assert check_partition_confinement(db.log) == []

    def test_flags_cross_partition_ops(self, db):
        record = db.execute(CopyOp(PageId(0, 0), PageId(1, 5)))
        offenders = check_partition_confinement(db.log)
        assert [r.lsn for r in offenders] == [record.lsn]


class TestPartitionFailure:
    def test_failed_partition_unreadable(self, db):
        db.fail_partition(1)
        with pytest.raises(MediaFailureError):
            db.stable.read_page(PageId(1, 0))
        assert db.stable.failed_partitions == {1}

    def test_healthy_partition_still_readable(self, db):
        db.fail_partition(1)
        assert db.stable.read_page(PageId(0, 3)).value == ("v", 0, 3)


class TestPartitionRecovery:
    def test_recovers_only_failed_partition(self, db):
        db.execute(
            PhysiologicalWrite(PageId(1, 3), "stamp", ("post-backup",))
        )
        db.checkpoint()
        healthy_before = db.stable.snapshot()
        db.fail_partition(1)
        outcome = db.recover_partition(1)
        assert outcome.ok, outcome.diffs[:3]
        # Healthy partition byte-identical (never touched).
        for pid, version in healthy_before.items():
            if pid.partition == 0:
                assert db.stable.read_page(pid) == version

    def test_recovers_to_current_state(self, db):
        db.execute(PhysiologicalWrite(PageId(1, 0), "stamp", ("a",)))
        db.execute(PhysiologicalWrite(PageId(1, 0), "stamp", ("b",)))
        db.fail_partition(1)
        outcome = db.recover_partition(1)
        assert outcome.ok
        value = db.stable.read_page(PageId(1, 0)).value
        assert value[1] == "b"

    def test_refuses_on_cross_partition_op(self, db):
        db.execute(CopyOp(PageId(0, 0), PageId(1, 5)))
        db.checkpoint()
        db.fail_partition(1)
        with pytest.raises(RecoveryError):
            db.recover_partition(1)

    def test_cross_partition_op_elsewhere_is_fine(self, db):
        """A cross-partition op not touching the failed partition does
        not block its recovery."""
        db3 = Database(pages_per_partition=[8, 8, 8], policy="general")
        for partition in range(3):
            for slot in range(8):
                db3.execute(
                    PhysicalWrite(PageId(partition, slot), (partition, slot))
                )
        db3.checkpoint()
        db3.start_backup(steps=2)
        db3.run_backup(pages_per_tick=8)
        db3.execute(CopyOp(PageId(0, 0), PageId(1, 5)))  # spans 0 and 1
        db3.execute(PhysiologicalWrite(PageId(2, 2), "stamp", ("x",)))
        db3.checkpoint()
        db3.fail_partition(2)
        assert db3.recover_partition(2).ok

    def test_requires_completed_backup(self):
        db2 = Database(pages_per_partition=[8, 8], policy="general")
        db2.fail_partition(1)
        with pytest.raises(NoBackupError):
            db2.recover_partition(1)

    def test_incomplete_backup_rejected(self, db):
        db.start_backup(steps=2)
        run = db.engine.active
        with pytest.raises(NoBackupError):
            run_partition_media_recovery(
                db.stable, 1, run.backup, db.log
            )
        db.run_backup()
