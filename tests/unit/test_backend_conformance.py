"""Backend-conformance suite: every backend, one contract.

Each test here is parametrized over every registered storage backend
(:data:`repro.storage.BACKENDS`) and asserts the *protocol* contract of
:mod:`repro.storage.api` — read/write round trips, multi-write atomicity
under torn faults, log durability cuts, archive round trips, and
identical fault-injection schedules.  A new backend conforms when this
file passes for it.
"""

import json
import os
import warnings

import pytest

from repro.core.config import BackupConfig
from repro.db import Database
from repro.errors import BackupError, SimulatedCrash
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.sim.faults import FaultKind, FaultPlane, FaultSpec, IOPoint
from repro.storage import BACKENDS, open_backend
from repro.storage.api import BackupStore, LogDevice, PageStore
from repro.storage.archive import load_backup, save_backup
from repro.storage.layout import Layout
from repro.storage.page import PageVersion
from repro.workloads import mixed_logical_workload


def pid(slot, partition=0):
    return PageId(partition, slot)


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    be = open_backend(backend=request.param,
                      data_dir=str(tmp_path / "data"))
    yield be
    be.close()


@pytest.fixture(params=BACKENDS)
def db(request, tmp_path):
    database = Database(pages_per_partition=[16], policy="general",
                        backend=request.param,
                        data_dir=str(tmp_path / "data"))
    yield database
    database.close()


class TestFactory:
    def test_backend_names(self, backend):
        assert backend.name in BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackupError):
            open_backend(backend="punchcards")

    def test_config_drives_selection(self, tmp_path):
        cfg = BackupConfig(backend="file", data_dir=str(tmp_path / "d"))
        be = open_backend(cfg)
        assert be.name == "file"
        be.close()
        assert open_backend(BackupConfig()).name == "memory"

    def test_keywords_win_over_config(self, tmp_path):
        cfg = BackupConfig(backend="file", data_dir=str(tmp_path / "d"))
        assert open_backend(cfg, backend="memory").name == "memory"

    def test_stores_satisfy_protocols(self, backend):
        stable = backend.create_stable(Layout([4]), initial_value=())
        backup = backend.create_backup(1, 0)
        assert isinstance(stable, PageStore)
        assert isinstance(backup, BackupStore)
        device = backend.create_log_device(2)
        if device is not None:
            assert isinstance(device, LogDevice)

    def test_close_is_idempotent(self, backend):
        backend.create_stable(Layout([4]), initial_value=())
        backend.close()
        backend.close()


class TestPageStoreContract:
    def test_write_read_round_trip(self, backend):
        stable = backend.create_stable(Layout([8]), initial_value=())
        stable.write_page(pid(1), ("v", 1), 5)
        version = stable.read_page(pid(1))
        assert version.value == ("v", 1)
        assert version.page_lsn == 5

    def test_bulk_read_matches_single_reads(self, backend):
        stable = backend.create_stable(Layout([8]), initial_value=())
        for slot in range(8):
            stable.write_page(pid(slot), ("r", slot), slot + 1)
        bulk = dict(stable.read_pages([pid(s) for s in range(8)]))
        for slot in range(8):
            assert bulk[pid(slot)] == stable.read_page(pid(slot))

    def test_multi_write_atomic(self, backend):
        stable = backend.create_stable(Layout([8]), initial_value=())
        stable.write_pages_atomically({
            pid(0): PageVersion("a", 3),
            pid(1): PageVersion("b", 3),
        })
        assert stable.read_page(pid(0)).value == "a"
        assert stable.read_page(pid(1)).value == "b"

    def test_torn_multi_write_repaired(self, backend):
        """A torn install must roll back wholly via the shadow journal."""
        stable = backend.create_stable(Layout([8]), initial_value=())
        stable.write_pages_atomically({
            pid(0): PageVersion("old0", 1),
            pid(1): PageVersion("old1", 1),
        })
        stable.attach_faults(FaultPlane([
            FaultSpec(FaultKind.TORN, point=IOPoint.STABLE_MULTI_WRITE,
                      at_io=1, keep=1),
        ]))
        with pytest.raises(SimulatedCrash):
            stable.write_pages_atomically({
                pid(0): PageVersion("new0", 2),
                pid(1): PageVersion("new1", 2),
            })
        stable.attach_faults(None)
        repaired = stable.repair_torn()
        assert repaired
        for slot in (0, 1):
            assert stable.read_page(pid(slot)).value == f"old{slot}"
            assert stable.read_page(pid(slot)).page_lsn == 1
            assert stable.verify_page(pid(slot))
        assert stable.damaged_pages() == []

    def test_verify_detects_bitrot(self, backend):
        stable = backend.create_stable(Layout([8]), initial_value=())
        stable.write_page(pid(2), ("payload",), 7)
        stable.attach_faults(FaultPlane([
            FaultSpec(FaultKind.BITROT, point=IOPoint.STABLE_WRITE,
                      at_io=1, seed=1),
        ]))
        stable.write_page(pid(3), ("doomed",), 8)
        damaged = stable.damaged_pages()
        assert len(damaged) == 1
        assert not stable.verify_page(damaged[0])


class TestLogDurabilityCut:
    def test_crash_preserves_forced_records(self, db):
        """Every record forced durable survives a crash; recovery works."""
        for slot in range(8):
            db.execute(PhysicalWrite(pid(slot), ("r", slot)))
        db.log.force()
        forced = db.log.flushed_lsn
        db.crash()
        assert db.log.flushed_lsn >= forced
        assert db.recover().ok

    def test_backup_and_media_recovery(self, db):
        source = mixed_logical_workload(db.layout, seed=3, count=60)
        db.start_backup(BackupConfig(steps=4))
        while db.backup_in_progress():
            db.backup_step(4)
            op = next(source, None)
            if op is not None:
                db.execute(op)
            db.install_some(2)
        db.media_failure()
        assert db.media_recover().ok


class TestArchiveRoundTrip:
    def test_save_load_round_trip(self, db, tmp_path):
        for slot in range(8):
            db.execute(PhysicalWrite(pid(slot), ("r", slot)))
        db.start_backup(BackupConfig(steps=2))
        backup = db.run_backup()
        path = str(tmp_path / "backup.jsonl")
        assert save_backup(backup, path) > 0
        loaded = load_backup(path)
        assert loaded.pages() == backup.pages()
        assert loaded.completion_lsn == backup.completion_lsn


class TestFaultParity:
    def _count_points(self, backend_name, data_dir):
        db = Database(pages_per_partition=[16], policy="general",
                      backend=backend_name, data_dir=data_dir)
        plane = db.attach_faults(FaultPlane())
        source = mixed_logical_workload(db.layout, seed=5, count=40)
        db.start_backup(BackupConfig(steps=4, batched=True))
        while db.backup_in_progress():
            db.backup_step(4)
            op = next(source, None)
            if op is not None:
                db.execute(op)
            db.install_some(2)
        db.close()
        return dict(plane.count_by_point)

    def test_identical_fault_schedules(self, tmp_path):
        """The same run hits the same fault points the same number of
        times on every backend — the satellite-2 guarantee that seeded
        fault schedules are backend-independent."""
        memory = self._count_points("memory", None)
        file_counts = self._count_points("file", str(tmp_path / "d"))
        assert memory == file_counts


class TestDeprecationShims:
    def test_stable_faults_setter_warns_at_caller(self):
        from repro.storage.stable_db import StableDatabase

        stable = StableDatabase(Layout([4]), initial_value=())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            stable.faults = FaultPlane()
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        assert "attach_faults" in str(caught[0].message)
        # stacklevel=2: the warning must blame this file, not the shim.
        assert caught[0].filename == __file__

    def test_backup_faults_setter_warns_at_caller(self):
        from repro.storage.backup_db import BackupDatabase

        backup = BackupDatabase(1, 0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backup.faults = FaultPlane()
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        assert caught[0].filename == __file__

    def test_attach_faults_does_not_warn(self, backend):
        stable = backend.create_stable(Layout([4]), initial_value=())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            stable.attach_faults(FaultPlane())
        assert caught == []


class TestConfigValidation:
    def test_backend_validated(self):
        with pytest.raises(Exception):
            BackupConfig(backend="punchcards")

    def test_data_dir_requires_file_backend(self):
        with pytest.raises(Exception):
            BackupConfig(data_dir="/tmp/x")

    def test_process_executor_requires_file_backend(self):
        with pytest.raises(Exception):
            BackupConfig(executor="process")
        cfg = BackupConfig(executor="process", backend="file")
        assert cfg.executor == "process"
