"""Unit tests for the tertiary-storage archive format."""

import pytest

from repro.db import Database
from repro.errors import BackupError
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.storage.archive import _decode, _encode, load_backup, save_backup


def pid(slot):
    return PageId(0, slot)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            42,
            -1,
            "text",
            3.25,
            float("inf"),
            b"\x00\xffbytes",
            (),
            (1, "a", (2, "b")),
            frozenset({1, 2}),
            ("meta", 3, 7, (2, 5)),
        ],
    )
    def test_roundtrip(self, value):
        assert _decode(_encode(value)) == value

    def test_unsupported_type_rejected(self):
        class Weird:
            pass

        with pytest.raises(BackupError):
            _encode(Weird())

    def test_corrupt_data_rejected(self):
        with pytest.raises(BackupError):
            _decode({"t": "nope"})


class TestArchiveRoundtrip:
    def _backed_up_db(self):
        db = Database(pages_per_partition=[16], policy="general")
        for slot in range(8):
            db.execute(PhysicalWrite(pid(slot), ("v", slot)))
        db.checkpoint()
        db.start_backup(steps=2)
        return db, db.run_backup(pages_per_tick=16)

    def test_save_and_load(self, tmp_path):
        db, backup = self._backed_up_db()
        path = str(tmp_path / "backup.json")
        size = save_backup(backup, path)
        assert size > 0
        loaded = load_backup(path)
        assert loaded.backup_id == backup.backup_id
        assert loaded.media_scan_start_lsn == backup.media_scan_start_lsn
        assert loaded.completion_lsn == backup.completion_lsn
        assert loaded.pages() == backup.pages()

    def test_media_recovery_from_archived_backup(self, tmp_path):
        """The full loop: archive to disk, lose the medium, restore from
        the file + the media log."""
        db, backup = self._backed_up_db()
        path = str(tmp_path / "backup.json")
        save_backup(backup, path)
        db.execute(PhysicalWrite(pid(0), ("post-backup",)))
        db.checkpoint()
        db.media_failure()
        loaded = load_backup(path)
        outcome = db.media_recover(backup=loaded)
        assert outcome.ok, outcome.diffs[:3]
        assert db.stable.read_page(pid(0)).value == ("post-backup",)

    def test_incomplete_backup_not_archivable(self, tmp_path):
        db = Database(pages_per_partition=[16], policy="general")
        db.start_backup(steps=2)
        run = db.engine.active
        with pytest.raises(BackupError):
            save_backup(run.backup, str(tmp_path / "x.json"))
        db.run_backup()

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99}')
        with pytest.raises(BackupError):
            load_backup(str(path))

    def test_base_backup_id_preserved(self, tmp_path):
        db, full = self._backed_up_db()
        db.execute(PhysicalWrite(pid(1), ("changed",)))
        db.start_backup(steps=2, incremental=True)
        incremental = db.run_backup(pages_per_tick=16)
        path = str(tmp_path / "incr.json")
        save_backup(incremental, path)
        loaded = load_backup(path)
        assert loaded.base_backup_id == full.backup_id
