"""Unit tests for the archive tier (src/repro/archive, docs/ARCHIVE.md).

Covers the chain manifest (CRC envelope, atomic replace, journal crash
windows), the scheduler, journal-then-swap compaction crash atomicity,
the page-healing ladder, chain-aware retention pinning, the new
BackupConfig knobs, and chain-aware scrubbing.
"""

import pytest

from repro.archive import (
    ArchiveManager,
    ChainManifest,
    FileManifestStore,
    GenerationRecord,
    MemoryManifestStore,
    select_chain_prefix,
)
from repro.archive.manifest import KIND_COMPACTED, KIND_FULL, KIND_INCREMENTAL
from repro.core.config import BackupConfig
from repro.db import Database
from repro.errors import (
    BackupError,
    ChainPinnedError,
    ManifestError,
    NoBackupError,
    RecoveryError,
    ReproError,
    SimulatedCrash,
)
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.sim.faults import FaultKind, FaultPlane, FaultSpec, IOPoint


def _record(backup_id, kind=KIND_FULL, base=None, scan=1, completion=10,
            pages=4):
    return GenerationRecord(
        backup_id=backup_id, kind=kind, base_backup_id=base,
        media_scan_start_lsn=scan, completion_lsn=completion, pages=pages,
    )


def _seeded_db(pages=16):
    db = Database(pages_per_partition=[pages], policy="general")
    for slot in range(pages):
        db.execute(PhysicalWrite(PageId(0, slot), ("seed", slot)))
    db.checkpoint()
    return db


def _chain_db(pages=16):
    """A database with a three-generation chain and known copy sets.

    Generation layout (by slot of partition 0):

    * base full: every page;
    * inc1: slots 1, 2, 3, 7 (written after the full);
    * inc2: slots 4, 5, 7 (written after inc1 — slot 7 is in *both*
      incrementals, the newer-shadows healing case).
    """
    db = _seeded_db(pages)
    archive = db.attach_archive(BackupConfig(steps=4))
    archive.run_full()
    for slot in (1, 2, 3, 7):
        db.execute(PhysicalWrite(PageId(0, slot), ("mid", slot)))
    db.checkpoint()  # installed: each copy set is exactly the writes
    archive.run_incremental()
    for slot in (4, 5, 7):
        db.execute(PhysicalWrite(PageId(0, slot), ("late", slot)))
    db.checkpoint()
    archive.run_incremental()
    return db, archive


class TestManifest:
    def test_round_trip(self):
        manifest = ChainManifest((
            _record(1), _record(2, KIND_INCREMENTAL, base=1, completion=20),
        ), epoch=3)
        loaded = ChainManifest.from_bytes(manifest.to_bytes())
        assert loaded == manifest
        assert loaded.generation_ids() == [1, 2]

    def test_crc_detects_corruption(self):
        blob = bytearray(ChainManifest((_record(1),)).to_bytes())
        # Flip a byte inside the payload region (past the CRC header).
        blob[len(blob) // 2] ^= 0x40
        with pytest.raises(ManifestError):
            ChainManifest.from_bytes(bytes(blob))

    def test_unreadable_blob_rejected(self):
        with pytest.raises(ManifestError):
            ChainManifest.from_bytes(b"not json at all")

    def test_with_generations_bumps_epoch(self):
        manifest = ChainManifest((_record(1),), epoch=5)
        assert manifest.with_generations([_record(2)]).epoch == 6

    def test_malformed_record_rejected(self):
        with pytest.raises(ManifestError):
            GenerationRecord.from_dict({"backup_id": 1})


class TestFileManifestStore:
    def test_round_trip_and_journal(self, tmp_path):
        store = FileManifestStore(str(tmp_path))
        assert store.load() is None
        assert store.load_journal() is None
        store.save(b"manifest-v1")
        store.save_journal(b"journal-v1")
        assert store.load() == b"manifest-v1"
        assert store.load_journal() == b"journal-v1"
        store.clear_journal()
        assert store.load_journal() is None
        store.clear_journal()  # idempotent

    def test_crashed_replace_keeps_old_manifest(self, tmp_path,
                                                monkeypatch):
        """A crash in the publish window must leave the old manifest:
        the write goes to a temp file and only ``os.replace`` commits."""
        store = FileManifestStore(str(tmp_path))
        store.save(b"manifest-v1")

        def boom(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(
            "repro.archive.manifest.os.replace", boom
        )
        with pytest.raises(OSError):
            store.save(b"manifest-v2")
        monkeypatch.undo()
        assert store.load() == b"manifest-v1"


class TestJournalRecovery:
    def test_journal_with_swapped_manifest_rolls_forward(self):
        """Crash after the manifest swap but before the journal clear:
        startup must keep the new chain and clear the journal."""
        db, archive = _chain_db()
        compacted = archive.compact()
        archive.store.save_journal(
            b'{"merge": [1, 2, 3], "into": %d}' % compacted.backup_id
        )
        reborn = ArchiveManager(db, manifest_store=archive.store)
        assert reborn.store.load_journal() is None
        assert reborn.manifest.generation_ids() == [compacted.backup_id]

    def test_journal_without_swap_rolls_back(self):
        """Crash before the swap: the journal is discarded and the old
        chain is untouched."""
        db, archive = _chain_db()
        before = archive.manifest.generation_ids()
        archive.store.save_journal(b'{"merge": [1, 2, 3], "into": 999}')
        reborn = ArchiveManager(db, manifest_store=archive.store)
        assert reborn.store.load_journal() is None
        assert reborn.manifest.generation_ids() == before

    def test_garbage_journal_rolls_back(self):
        db, archive = _chain_db()
        before = archive.manifest.generation_ids()
        archive.store.save_journal(b"\xff\xfenot json")
        reborn = ArchiveManager(db, manifest_store=archive.store)
        assert reborn.store.load_journal() is None
        assert reborn.manifest.generation_ids() == before

    def test_crash_before_journal_clear_retires_sources(self):
        """Crash in the window after the manifest swap but before the
        journal clear: startup roll-forward must finish compaction's
        epilogue by retiring the merge sources (newest first), or the
        orphaned sources pin the log at the old base's scan start
        forever."""
        db, archive = _chain_db()
        sources = archive.chain()

        def crash():
            raise SimulatedCrash("crash before journal clear")

        archive.store.clear_journal = crash
        with pytest.raises(SimulatedCrash):
            archive.compact()
        del archive.store.clear_journal
        # The crash window: swap committed, journal present, sources
        # still retained.
        assert archive.store.load_journal() is not None
        assert not any(db.retention.is_retired(b) for b in sources)
        reborn = ArchiveManager(db, manifest_store=archive.store)
        assert reborn.store.load_journal() is None
        for backup in sources:
            assert db.retention.is_retired(backup)
        # Only the merged generation still pins the log.
        assert [
            b.backup_id for b in db.retention.retained_backups()
        ] == reborn.manifest.generation_ids()


class TestCompaction:
    def test_compact_merges_chain_to_one_generation(self):
        db, archive = _chain_db()
        base = archive.chain()[0]
        last = archive.chain()[-1]
        merged = archive.compact()
        assert [g.backup_id for g in archive.chain()] == [merged.backup_id]
        record = archive.generation_records()[0]
        assert record.kind == KIND_COMPACTED
        # The merged generation inherits the chain's overlay identity.
        assert merged.media_scan_start_lsn == base.media_scan_start_lsn
        assert merged.completion_lsn == last.completion_lsn
        assert getattr(merged, "base_backup_id", None) is None
        db.media_failure()
        assert db.media_recover_chain(archive.chain()).ok

    def test_compact_retires_sources(self):
        db, archive = _chain_db()
        sources = archive.chain()
        archive.compact()
        for backup in sources:
            assert db.retention.is_retired(backup)

    def test_crash_mid_compaction_keeps_old_chain(self):
        db, archive = _chain_db()
        before = archive.manifest.generation_ids()
        db.attach_faults(FaultPlane([
            FaultSpec(FaultKind.CRASH, point=IOPoint.BACKUP_BULK_RECORD,
                      at_io=1),
        ]))
        with pytest.raises(SimulatedCrash):
            archive.compact()
        # The rollback path: journal cleared, manifest untouched, no
        # half-built image left in the completed list.
        assert archive.store.load_journal() is None
        assert archive.manifest.generation_ids() == before
        assert [b.backup_id for b in db.engine.completed
                if b.is_complete] == before
        db.crash()
        assert db.recover().ok
        db.media_failure()
        assert db.media_recover_chain(archive.chain()).ok
        # The retry completes on the surviving chain.
        merged = archive.compact()
        assert archive.manifest.generation_ids() == [merged.backup_id]

    def test_compact_refuses_damaged_everywhere(self):
        """A page damaged in every generation that records it cannot be
        laundered through compaction."""
        db, archive = _chain_db()
        # Slot 9 exists only in the base full; rot it there.
        archive.chain()[0]._rot_cell(PageId(0, 9))
        with pytest.raises(BackupError, match="heal_chain"):
            archive.compact()


class TestHealingLadder:
    def test_newer_generation_shadows(self):
        """Slot 7 is in both incrementals: rotting inc1's copy drops the
        cell, because every restore overlays inc2's intact one."""
        db, archive = _chain_db()
        inc1 = archive.chain()[1]
        pid = PageId(0, 7)
        inc1._rot_cell(pid)
        report = archive.heal_chain()
        assert (inc1.backup_id, pid, "newer-shadows") in report.healed
        assert pid not in inc1.pages()
        db.media_failure()
        assert db.media_recover_chain(archive.chain()).ok

    def test_rebuild_from_base_and_log(self):
        """Slot 2 is only in inc1: its copy is rebuilt from the base
        plus the logged operations up to inc1's seal point."""
        db, archive = _chain_db()
        inc1 = archive.chain()[1]
        pid = PageId(0, 2)
        inc1._rot_cell(pid)
        report = archive.heal_chain()
        assert (inc1.backup_id, pid, "rebuild") in report.healed
        assert inc1.pages()[pid].value == ("mid", 2)
        assert not inc1.damaged_pages()
        db.media_failure()
        assert db.media_recover_chain(archive.chain()).ok

    def test_no_donor_is_quarantined(self):
        """Slot 9 exists only in the base and has no logged operations
        after the base's scan start: no donor, honest quarantine."""
        db, archive = _chain_db()
        base = archive.chain()[0]
        pid = PageId(0, 9)
        base._rot_cell(pid)
        report = archive.heal_chain()
        assert (base.backup_id, pid) in report.quarantined
        assert not report.ok
        db.media_failure()
        outcome = db.media_recover_chain(archive.chain())
        assert pid in outcome.quarantined

    def test_damaged_base_with_newer_donor_is_not_dropped(self):
        """Slot 7 has intact copies in both incrementals, but the
        damage is in the *base*: dropping the base's cell would make a
        PITR cut at the base's seal silently restore the initial value.
        The ladder must skip rung 1; with no logged history inside the
        base's sweep window the page is quarantined honestly."""
        db, archive = _chain_db()
        base = archive.chain()[0]
        pid = PageId(0, 7)
        base._rot_cell(pid)
        report = archive.heal_chain()
        assert (base.backup_id, pid) in report.quarantined
        assert not any(
            b == base.backup_id and p == pid for b, p, _ in report.healed
        )
        assert pid in base.pages()  # left in place, still damaged
        # PITR to the base's seal point: honest quarantine, not a
        # silent fallback to the initial value.
        db.media_failure()
        outcome = db.restore_to_lsn(base.completion_lsn)
        assert pid in outcome.quarantined
        db.crash()
        assert db.recover().ok
        # The full chain still restores fine: inc2's copy shadows.
        db.media_failure()
        assert db.media_recover_chain(archive.chain()).ok

    def test_clean_chain_heals_nothing(self):
        _, archive = _chain_db()
        report = archive.heal_chain()
        assert report.ok and not report.healed


class TestChainPrefix:
    def test_prefix_selection(self):
        _, archive = _chain_db()
        chain = archive.chain()
        full, inc1, inc2 = chain
        assert select_chain_prefix(chain, inc2.completion_lsn) == chain
        assert select_chain_prefix(
            chain, inc2.completion_lsn - 1
        ) == [full, inc1]
        assert select_chain_prefix(
            chain, full.completion_lsn
        ) == [full]

    def test_target_before_base_rejected(self):
        _, archive = _chain_db()
        chain = archive.chain()
        with pytest.raises(RecoveryError):
            select_chain_prefix(chain, chain[0].completion_lsn - 1)

    def test_empty_chain_rejected(self):
        with pytest.raises(NoBackupError):
            select_chain_prefix([], 10)


class TestRetentionPinning:
    def test_retiring_pinned_base_raises(self):
        db, archive = _chain_db()
        full, inc1, inc2 = archive.chain()
        with pytest.raises(ChainPinnedError) as exc:
            db.retire_backup(full)
        assert sorted(exc.value.dependents) == [
            inc1.backup_id, inc2.backup_id
        ]
        with pytest.raises(ChainPinnedError):
            db.retire_backup(inc1)

    def test_newest_first_retirement_succeeds(self):
        db, archive = _chain_db()
        for backup in reversed(archive.chain()):
            db.retire_backup(backup)

    def test_incremental_pins_base_scan_start(self):
        """A retained incremental pins the log from its *base full's*
        scan start — a chain restore replays from there."""
        db, archive = _chain_db()
        full, inc1, inc2 = archive.chain()
        for backup in (inc1, inc2):
            assert db.retention.pin_lsn(backup) == full.media_scan_start_lsn
        assert db.retention.pin_lsn(full) == full.media_scan_start_lsn

    def test_truncation_respects_chain_pin(self):
        db, archive = _chain_db()
        full = archive.chain()[0]
        db.take_checkpoint()
        db.truncate_log()
        assert db.log.first_retained_lsn <= full.media_scan_start_lsn
        for backup in archive.chain():
            assert db.retention.is_usable(backup)


class TestConfigKnobs:
    def test_defaults_off(self):
        cfg = BackupConfig()
        assert cfg.incremental_every is None
        assert cfg.compact_threshold is None

    @pytest.mark.parametrize("field", ["incremental_every",
                                       "compact_threshold"])
    def test_validation(self, field):
        assert getattr(BackupConfig(**{field: 1}), field) == 1
        with pytest.raises(ReproError):
            BackupConfig(**{field: 0})


class TestScheduler:
    def test_tick_takes_full_then_incrementals_then_compacts(self):
        db = _seeded_db()
        archive = db.attach_archive(
            BackupConfig(steps=4, incremental_every=8, compact_threshold=2)
        )
        assert archive.tick() is not None  # no chain -> base full
        records = archive.generation_records()
        assert [r.kind for r in records] == [KIND_FULL]
        assert archive.tick() is None  # not enough log accumulated
        for round_no in range(2):
            for i in range(8):
                db.execute(
                    PhysicalWrite(PageId(0, i), ("tick", round_no, i))
                )
            assert archive.tick() is not None
        kinds = [r.kind for r in archive.generation_records()]
        assert kinds == [KIND_FULL, KIND_INCREMENTAL, KIND_INCREMENTAL]
        # Two links reach the threshold: the next tick compacts.
        archive.tick()
        kinds = [r.kind for r in archive.generation_records()]
        assert kinds == [KIND_COMPACTED]
        db.media_failure()
        assert db.media_recover_chain(archive.chain()).ok

    def test_incremental_requires_base(self):
        db = _seeded_db()
        archive = db.attach_archive(BackupConfig(steps=4))
        with pytest.raises(NoBackupError):
            archive.run_incremental()

    def test_attach_is_idempotent_and_adopts(self):
        db = _seeded_db()
        db.start_backup(BackupConfig(steps=4))
        db.run_backup(BackupConfig(pages_per_tick=64))
        archive = db.attach_archive()
        assert len(archive.generation_records()) == 1
        assert db.attach_archive() is archive


class TestScrubChain:
    def test_clean_chain(self):
        _, archive = _chain_db()
        from repro.core.scrub import scrub_chain

        report = scrub_chain(archive)
        assert report.ok
        assert report.backups_scanned == 3
        assert len(report.generations) == 3
        assert all(g["bytes_scanned"] > 0 for g in report.generations)

    def test_detects_rotted_generation(self):
        _, archive = _chain_db()
        from repro.core.scrub import scrub_chain

        archive.chain()[1]._rot_cell(PageId(0, 2))
        report = scrub_chain(archive)
        assert not report.ok
        assert any(f.site == "backup" for f in report.findings)
        assert report.generations[1]["damaged"]

    def test_missing_image_keeps_rows_aligned(self):
        """A missing middle image must not shift later generations onto
        the wrong manifest records or drop the tail from the scan."""
        db, archive = _chain_db()
        from repro.core.scrub import scrub_chain

        full, inc1, inc2 = archive.chain()
        db.engine.completed.remove(inc1)
        report = scrub_chain(archive)
        assert not report.ok
        assert any("no such image" in f.detail for f in report.findings)
        assert [
            (g["backup_id"], g["kind"]) for g in report.generations
        ] == [
            (full.backup_id, KIND_FULL),
            (inc2.backup_id, KIND_INCREMENTAL),
        ]
        assert report.backups_scanned == 2

    def test_detects_corrupt_manifest(self):
        _, archive = _chain_db()
        from repro.core.scrub import scrub_chain

        blob = bytearray(archive.store.load())
        blob[len(blob) // 2] ^= 0x20
        archive.store.save(bytes(blob))
        report = scrub_chain(archive)
        assert not report.ok
        assert any(f.site == "manifest" for f in report.findings)


class TestRestoreToLsn:
    def test_restore_to_each_seal_point(self):
        db, archive = _chain_db()
        # Snapshot the truth at each seal point by replaying the log.
        from repro.recovery.redo import RedoReplayer

        for generation in archive.chain():
            cut = generation.completion_lsn
            expected = {}
            RedoReplayer(initial_value=db.initial_value).replay(
                db.log.merge_scan(1, cut), expected
            )
            db.media_failure()
            assert db.restore_to_lsn(cut).ok
            state = db.stable.snapshot()
            for pid, version in state.items():
                want = (expected[pid].value if pid in expected
                        else db.initial_value)
                assert version.value == want, (cut, pid)
            # The kept log suffix rolls the store forward to present.
            db.crash()
            assert db.recover().ok

    def test_restore_before_base_rejected(self):
        db, archive = _chain_db()
        base = archive.chain()[0]
        db.media_failure()
        with pytest.raises(RecoveryError):
            db.restore_to_lsn(base.completion_lsn - 1)
