"""Unit tests for B-tree deletion and rebalancing."""

import random

import pytest

from repro.btree import BTree, BTreeBorrow, BTreeMergeInto
from repro.btree.ops import node_value
from repro.db import Database
from repro.errors import OperationError
from repro.ids import PageId


@pytest.fixture
def db():
    return Database(pages_per_partition=[256], policy="general")


@pytest.fixture
def tree(db):
    return BTree(db, order=4, logging="tree").create()


class TestDeleteBasics:
    def test_delete_existing_key(self, tree):
        tree.insert(1, "a")
        assert tree.delete(1)
        assert tree.search(1) is None
        assert tree.check_invariants() == 0

    def test_delete_missing_key(self, tree):
        tree.insert(1, "a")
        assert not tree.delete(2)
        assert tree.check_invariants() == 1

    def test_delete_from_empty_tree(self, tree):
        assert not tree.delete(1)

    def test_reinsert_after_delete(self, tree):
        tree.insert(1, "a")
        tree.delete(1)
        tree.insert(1, "b")
        assert tree.search(1) == "b"


class TestRebalancing:
    def _filled(self, tree, count=40):
        for key in range(count):
            tree.insert(key, ("v", key))
        return tree

    def test_delete_everything(self, tree):
        self._filled(tree)
        for key in range(40):
            assert tree.delete(key)
        assert tree.check_invariants() == 0
        assert list(tree.items()) == []

    def test_delete_everything_reverse(self, tree):
        self._filled(tree)
        for key in reversed(range(40)):
            assert tree.delete(key)
        assert tree.check_invariants() == 0

    def test_height_shrinks_after_mass_delete(self, tree):
        self._filled(tree, 60)
        tall = tree.height()
        for key in range(55):
            tree.delete(key)
        assert tree.height() < tall
        assert tree.check_invariants() == 5

    def test_merges_recycle_slots(self, tree):
        self._filled(tree, 60)
        _, _, freed_before = tree._meta_full()
        for key in range(50):
            tree.delete(key)
        _, _, freed_after = tree._meta_full()
        assert len(freed_after) > len(freed_before)
        # Recycled slots are reused by later splits.
        for key in range(100, 160):
            tree.insert(key, key)
        assert tree.check_invariants() == 70

    def test_random_churn_matches_model(self, db):
        tree = BTree(db, order=5, logging="tree").create()
        rng = random.Random(11)
        model = {}
        for step in range(600):
            if model and rng.random() < 0.45:
                key = rng.choice(sorted(model))
                assert tree.delete(key)
                del model[key]
            else:
                key = rng.randrange(200)
                tree.insert(key, ("v", key, step))
                model[key] = ("v", key, step)
            if step % 97 == 0:
                assert dict(tree.items()) == model
        assert tree.check_invariants() == len(model)

    def test_page_logging_mode_agrees(self):
        def churn(mode):
            db = Database(pages_per_partition=[256], policy="general")
            tree = BTree(db, order=5, logging=mode).create()
            rng = random.Random(13)
            for key in range(80):
                tree.insert(key, key)
            for key in rng.sample(range(80), 60):
                tree.delete(key)
            return list(tree.items())

        assert churn("tree") == churn("page")


class TestDeleteRecovery:
    def test_crash_recovery_after_churn(self, db, tree):
        rng = random.Random(3)
        model = {}
        for key in range(60):
            tree.insert(key, key)
            model[key] = key
        for key in rng.sample(range(60), 45):
            tree.delete(key)
            del model[key]
        db.crash()
        assert db.recover().ok
        reopened = BTree.attach(db, order=4)
        assert dict(reopened.items()) == model

    def test_online_backup_during_deletes(self, db, tree):
        rng = random.Random(4)
        for key in range(80):
            tree.insert(key, key)
        db.start_backup(steps=4)
        doomed = iter(rng.sample(range(80), 60))
        while db.backup_in_progress():
            db.backup_step(8)
            for _ in range(3):
                key = next(doomed, None)
                if key is not None:
                    tree.delete(key)
            db.install_some(2, rng)
        for key in doomed:
            tree.delete(key)
        db.media_failure()
        outcome = db.media_recover()
        assert outcome.ok, outcome.diffs[:3]
        reopened = BTree.attach(db, order=4)
        assert reopened.check_invariants() == 20


class TestStructuralOps:
    def test_merge_op_combines_records(self):
        src, dst = PageId(0, 1), PageId(0, 2)
        op = BTreeMergeInto(src, dst)
        result = op.apply({
            src: node_value("leaf", ((1, "a"),)),
            dst: node_value("leaf", ((5, "e"),)),
        })
        assert result[dst] == ("leaf", ((1, "a"), (5, "e")))
        assert op.readset == {src, dst}
        assert op.writeset == {dst}

    def test_merge_requires_distinct_pages(self):
        with pytest.raises(OperationError):
            BTreeMergeInto(PageId(0, 1), PageId(0, 1))

    def test_borrow_moves_low_records(self):
        src, dst = PageId(0, 1), PageId(0, 2)
        op = BTreeBorrow(src, dst, count=2, from_low=True)
        result = op.apply({
            src: node_value("leaf", ((5, "e"), (6, "f"), (7, "g"))),
            dst: node_value("leaf", ((1, "a"),)),
        })
        assert result[dst] == ("leaf", ((1, "a"), (5, "e"), (6, "f")))
        assert result[src] == ("leaf", ((7, "g"),))
        # Two pages read AND written: an atomic two-page flush set.
        assert op.writeset == {src, dst}

    def test_borrow_moves_high_records(self):
        src, dst = PageId(0, 1), PageId(0, 2)
        op = BTreeBorrow(src, dst, count=1, from_low=False)
        result = op.apply({
            src: node_value("leaf", ((1, "a"), (2, "b"))),
            dst: node_value("leaf", ((5, "e"),)),
        })
        assert result[dst] == ("leaf", ((2, "b"), (5, "e")))
        assert result[src] == ("leaf", ((1, "a"),))

    def test_borrow_validation(self):
        with pytest.raises(OperationError):
            BTreeBorrow(PageId(0, 1), PageId(0, 1), 1, True)
        with pytest.raises(OperationError):
            BTreeBorrow(PageId(0, 1), PageId(0, 2), 0, True)

    def test_borrow_creates_multi_page_atomic_flush(self, db):
        """The borrow's write-graph node carries both pages; installing
        it is one atomic two-page stable write."""
        from repro.ops.physical import PhysicalWrite

        a, b = PageId(0, 1), PageId(0, 2)
        db.execute(PhysicalWrite(a, node_value("leaf", ((1, "x"), (2, "y")))))
        db.execute(PhysicalWrite(b, node_value("leaf", ())))
        db.execute(BTreeBorrow(a, b, 1, from_low=True))
        node = db.cm.graph.holder_of(a)
        assert node.vars == {a, b}
        before = db.stable.multi_page_flushes
        db.cm.install_node(node)
        assert db.stable.multi_page_flushes == before + 1
