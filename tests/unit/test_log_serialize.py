"""Unit tests for log/operation serialization."""

import random

import pytest

from repro.appfs.application import AppRead, AppWrite
from repro.appfs.runtime import AppEmit, AppFeed, AppStep, register_logic
from repro.btree.ops import (
    BTreeBorrow,
    BTreeInsert,
    BTreeMergeInto,
    BTreeSplitMove,
    BTreeSplitRemove,
)
from repro.db import Database
from repro.errors import LogError
from repro.ids import PageId
from repro.ops.identity import IdentityWrite
from repro.ops.logical import CopyOp, GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.ops.tree import MovRec, RmvRec, WriteNew
from repro.wal.checkpoint import CheckpointOp
from repro.wal.serialize import (
    load_log,
    op_from_spec,
    op_to_spec,
    save_log,
)


def pid(slot):
    return PageId(0, slot)


def roundtrip_equivalent(op, reads):
    """The reconstructed op must have identical sets and effects."""
    clone = op_from_spec(op_to_spec(op))
    assert clone.readset == op.readset
    assert clone.writeset == op.writeset
    assert clone.apply(reads) == op.apply(reads)
    return clone


class TestOpRoundtrip:
    def test_physical(self):
        roundtrip_equivalent(PhysicalWrite(pid(0), ("v", 1)), {})

    def test_identity_keeps_its_class(self):
        clone = op_from_spec(op_to_spec(IdentityWrite(pid(0), "x")))
        assert isinstance(clone, IdentityWrite)

    def test_physiological(self):
        roundtrip_equivalent(
            PhysiologicalWrite(pid(0), "increment", (3,)), {pid(0): 4}
        )

    def test_copy(self):
        roundtrip_equivalent(CopyOp(pid(0), pid(1)), {pid(0): "data"})

    def test_general_logical(self):
        roundtrip_equivalent(
            GeneralLogicalOp(
                [pid(0), pid(1)], [pid(2)], "concat_sorted"
            ),
            {pid(0): ((1, "a"),), pid(1): ((2, "b"),)},
        )

    def test_write_new_and_movrec(self):
        records = tuple((k, k) for k in range(6))
        roundtrip_equivalent(
            WriteNew(pid(0), pid(1), "copy_value"), {pid(0): records}
        )
        roundtrip_equivalent(MovRec(pid(0), 3, pid(1)), {pid(0): records})
        roundtrip_equivalent(RmvRec(pid(0), 3), {pid(0): records})

    def test_btree_ops(self):
        node = ("leaf", ((1, "a"), (2, "b"), (3, "c")))
        other = ("leaf", ((9, "z"),))
        roundtrip_equivalent(BTreeInsert(pid(0), 4, "d"), {pid(0): node})
        roundtrip_equivalent(
            BTreeSplitMove(pid(0), 2, pid(1)), {pid(0): node}
        )
        roundtrip_equivalent(BTreeSplitRemove(pid(0), 2), {pid(0): node})
        roundtrip_equivalent(
            BTreeMergeInto(pid(0), pid(1)), {pid(0): node, pid(1): other}
        )
        roundtrip_equivalent(
            BTreeBorrow(pid(0), pid(1), 1, from_low=True),
            {pid(0): node, pid(1): other},
        )

    def test_app_runtime_ops_keep_their_classes(self):
        register_logic("serde-logic", lambda s, i: ((s or 0) + 1, s))
        app_state = ("app", 0, "serde-logic", 0, 5, None)
        for op, reads in (
            (AppFeed(pid(0), pid(1)), {pid(0): 5, pid(1): app_state}),
            (AppStep(pid(1), "serde-logic"), {pid(1): app_state}),
            (AppEmit(pid(1), pid(2)), {pid(1): app_state}),
            (AppRead(pid(0), pid(1)), {pid(0): 5, pid(1): app_state}),
        ):
            clone = roundtrip_equivalent(op, reads)
            assert type(clone) is type(op)
            assert clone.successor_pairs() == op.successor_pairs()

    def test_app_write(self):
        clone = roundtrip_equivalent(
            AppWrite(pid(1), pid(2)), {pid(1): ("state",)}
        )
        assert clone.successor_pairs() == ((pid(2), pid(1)),)

    def test_checkpoint(self):
        op = CheckpointOp({pid(0): 5, pid(3): 9})
        clone = op_from_spec(op_to_spec(op))
        assert isinstance(clone, CheckpointOp)
        assert clone.dirty_table == op.dirty_table

    def test_unknown_spec_rejected(self):
        with pytest.raises(LogError):
            op_from_spec({"kind": "quantum"})


class TestLogRoundtrip:
    def _busy_db(self):
        from repro.workloads import mixed_logical_workload

        db = Database(pages_per_partition=[48], policy="general")
        rng = random.Random(6)
        for op in mixed_logical_workload(db.layout, seed=6, count=150):
            db.execute(op, source=f"txn-{rng.randrange(5)}")
            if rng.random() < 0.3:
                db.install_some(1, rng)
        db.take_checkpoint()
        return db

    def test_save_load_preserves_records(self, tmp_path):
        db = self._busy_db()
        path = str(tmp_path / "shipped.log.json")
        save_log(db.log, path)
        loaded = load_log(path)
        assert loaded.end_lsn == db.log.end_lsn
        assert loaded.first_retained_lsn == db.log.first_retained_lsn
        for original, clone in zip(db.log.scan(), loaded.scan()):
            assert original.lsn == clone.lsn
            assert original.flags == clone.flags
            assert original.source == clone.source
            assert original.op.writeset == clone.op.writeset

    def test_replay_of_loaded_log_matches_oracle(self, tmp_path):
        db = self._busy_db()
        path = str(tmp_path / "shipped.log.json")
        save_log(db.log, path)
        loaded = load_log(path)
        from repro.recovery.redo import RedoReplayer

        state = {}
        RedoReplayer().replay(loaded.scan(), state)
        for page, value in db.oracle_state().items():
            assert state[page].value == value

    def test_truncated_log_roundtrips_with_offset(self, tmp_path):
        db = self._busy_db()
        db.checkpoint()
        db.log.truncate_prefix(50)
        path = str(tmp_path / "tail.log.json")
        save_log(db.log, path)
        loaded = load_log(path)
        assert loaded.first_retained_lsn == 50
        assert loaded.record_at(50).lsn == 50

    def test_cross_machine_bootstrap_from_files_only(self, tmp_path):
        """The complete shipping loop: backup file + log file are the
        ONLY things crossing the machine boundary."""
        from repro.storage.archive import load_backup, save_backup

        db = self._busy_db()
        db.start_backup(steps=4)
        db.run_backup(pages_per_tick=16)
        from repro.workloads import mixed_logical_workload

        for op in mixed_logical_workload(db.layout, seed=7, count=30):
            db.execute(op)
        backup_path = str(tmp_path / "backup.json")
        log_path = str(tmp_path / "log.json")
        save_backup(db.latest_backup(), backup_path)
        save_log(db.log, log_path)
        expected = db.oracle_state()
        del db  # the "machine" is gone

        replacement = Database.bootstrap_from_backup(
            load_backup(backup_path),
            load_log(log_path),
            pages_per_partition=[48],
        )
        for page, value in expected.items():
            assert replacement.stable.read_page(page).value == value
