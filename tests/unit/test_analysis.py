"""Unit tests for the section 5 closed forms."""

import math

import pytest

from repro.core import analysis


class TestGeneralCurve:
    def test_one_step_always_logs(self):
        """N=1: 'we must always do the extra logging.'"""
        assert analysis.general_extra_logging(1) == pytest.approx(1.0)

    def test_asymptote_is_half(self):
        assert analysis.general_extra_logging(10_000) == pytest.approx(
            0.5, abs=1e-3
        )
        assert analysis.general_asymptote() == 0.5

    def test_closed_form_matches_step_average(self):
        for steps in (1, 2, 4, 8, 16, 32):
            average = sum(
                analysis.general_step_probability(m, steps)
                for m in range(1, steps + 1)
            ) / steps
            assert analysis.general_extra_logging(steps) == pytest.approx(
                average
            )

    def test_monotone_decreasing(self):
        values = [analysis.general_extra_logging(n) for n in range(1, 65)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestTreeCurve:
    def test_asymptote_is_one_sixth(self):
        """'Only one flush in six needs extra logging.'"""
        assert analysis.tree_extra_logging(10_000) == pytest.approx(
            1 / 6, abs=1e-3
        )
        assert analysis.tree_asymptote() == pytest.approx(1 / 6)

    def test_n1_value(self):
        # 1/6 + 1/2 - 1/6 = 1/2.
        assert analysis.tree_extra_logging(1) == pytest.approx(0.5)

    def test_closed_form_matches_step_average(self):
        for steps in (2, 4, 8, 16, 32):
            average = sum(
                analysis.tree_step_probability(m, steps)
                for m in range(1, steps + 1)
            ) / steps
            assert analysis.tree_extra_logging(steps) == pytest.approx(
                average, abs=1e-9
            )

    def test_tree_below_general_everywhere(self):
        """Tree operations reduce logging by half to two thirds (§5.3)."""
        for steps in range(1, 65):
            tree = analysis.tree_extra_logging(steps)
            general = analysis.general_extra_logging(steps)
            assert tree <= general
            if steps > 1:
                assert 0.3 <= 1 - tree / general <= 0.75


class TestReductionFraction:
    def test_ninety_percent_by_eight_steps(self):
        """§5.3: 'most of the reduction (almost 90%) has been achieved
        with an eight step backup.'"""
        # general: 93.75% by N=8; tree: 82% by N=8, 91% by N=16 — "most
        # of the reduction", with little incentive beyond eight steps.
        for kind in ("general", "tree"):
            at8 = analysis.reduction_fraction(8, kind)
            assert 0.80 <= at8 < 0.95
            gain_beyond_8 = analysis.reduction_fraction(32, kind) - at8
            assert gain_beyond_8 < 0.15

    def test_bounds(self):
        for kind in ("general", "tree"):
            assert analysis.reduction_fraction(1, kind) == pytest.approx(0.0)
            assert analysis.reduction_fraction(4096, kind) == pytest.approx(
                1.0, abs=1e-3
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            analysis.reduction_fraction(8, "quantum")


class TestFigure5Series:
    def test_default_series_shape(self):
        rows = analysis.figure5_series()
        assert [n for n, _, _ in rows] == [1, 2, 4, 8, 16, 32]
        for _, general, tree in rows:
            assert tree <= general

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            analysis.general_extra_logging(0)
        with pytest.raises(ValueError):
            analysis.tree_step_probability(0, 4)
        with pytest.raises(ValueError):
            analysis.general_step_probability(5, 4)
