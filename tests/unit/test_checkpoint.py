"""Unit tests for checkpoint records and the scan-start protocol."""

import pytest

from repro.db import Database
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.wal.checkpoint import CheckpointManager, CheckpointOp


def pid(slot):
    return PageId(0, slot)


@pytest.fixture
def db():
    return Database(pages_per_partition=[16], policy="general")


class TestCheckpointOp:
    def test_reads_and_writes_nothing(self):
        op = CheckpointOp({pid(0): 5})
        assert op.readset == frozenset()
        assert op.writeset == frozenset()
        assert op.apply({}) == {}

    def test_min_rec_lsn(self):
        assert CheckpointOp({pid(0): 5, pid(1): 3}).min_rec_lsn == 3
        assert CheckpointOp({}).min_rec_lsn is None

    def test_size_scales_with_table(self):
        small = CheckpointOp({pid(0): 1})
        large = CheckpointOp({pid(i): 1 for i in range(10)})
        assert large.log_record_size() > small.log_record_size()


class TestCheckpointManager:
    def test_no_checkpoint_scans_from_one(self, db):
        assert db.checkpoints.crash_scan_start() == 1

    def test_clean_checkpoint_scans_after_itself(self, db):
        db.execute(PhysicalWrite(pid(0), "v"))
        db.checkpoint()
        record = db.take_checkpoint()
        assert db.checkpoints.crash_scan_start() == record.lsn + 1

    def test_dirty_checkpoint_scans_from_min_rec_lsn(self, db):
        first = db.execute(PhysicalWrite(pid(0), "a"))
        db.execute(PhysicalWrite(pid(1), "b"))
        db.take_checkpoint()
        assert db.checkpoints.crash_scan_start() == first.lsn

    def test_checkpoint_table_snapshot(self, db):
        db.execute(PhysicalWrite(pid(0), "a"))
        record = db.take_checkpoint()
        op = record.op
        assert isinstance(op, CheckpointOp)
        assert set(op.dirty_table) == {pid(0)}

    def test_find_last_checkpoint(self, db):
        db.execute(PhysicalWrite(pid(0), "a"))
        db.take_checkpoint()
        db.execute(PhysicalWrite(pid(1), "b"))
        second = db.take_checkpoint()
        found = CheckpointManager.find_last_checkpoint(db.log)
        assert found is not None
        assert found.lsn == second.lsn

    def test_recovery_from_checkpoint_scan_start(self, db):
        """Replaying from the checkpoint-derived scan start recovers the
        oracle state — the scan start is never too late."""
        from repro.recovery.crash_recovery import run_crash_recovery

        for slot in range(6):
            db.execute(PhysicalWrite(pid(slot), ("v", slot)))
        db.flush_page(pid(0))
        db.flush_page(pid(1))
        db.take_checkpoint()
        db.execute(PhysicalWrite(pid(0), "post-ckpt"))
        scan_start = db.checkpoints.crash_scan_start()
        db.crash()
        outcome = run_crash_recovery(
            db.stable, db.log, scan_start_lsn=scan_start,
            oracle=db.oracle.state(),
        )
        assert outcome.ok, outcome.diffs[:3]

    def test_iwof_advances_checkpoint_scan_start(self, db):
        """Section 3.2: identity-logging a page truncates the log like a
        flush would — the checkpointed recLSN moves forward."""
        db.execute(PhysicalWrite(pid(0), "hot"))
        first = db.checkpoints
        db.take_checkpoint()
        early = db.checkpoints.crash_scan_start()
        record = db.cm.identity_install(pid(0))
        db.take_checkpoint()
        late = db.checkpoints.crash_scan_start()
        assert late == record.lsn > early
