"""Unit tests for recLSN / truncation tracking."""

from repro.ids import PageId
from repro.wal.truncation import RecLSNTracker


def pid(slot):
    return PageId(0, slot)


class TestRecLSN:
    def test_empty_tracker_truncates_past_end(self):
        tracker = RecLSNTracker()
        assert tracker.truncation_point(end_lsn=10) == 11

    def test_mark_dirty_keeps_oldest(self):
        tracker = RecLSNTracker()
        tracker.mark_dirty(pid(0), 5)
        tracker.mark_dirty(pid(0), 9)
        assert tracker.rec_lsn(pid(0)) == 5

    def test_truncation_point_is_min_rec_lsn(self):
        tracker = RecLSNTracker()
        tracker.mark_dirty(pid(0), 5)
        tracker.mark_dirty(pid(1), 3)
        assert tracker.truncation_point(10) == 3

    def test_install_advances_truncation(self):
        tracker = RecLSNTracker()
        tracker.mark_dirty(pid(0), 5)
        tracker.mark_dirty(pid(1), 3)
        tracker.mark_installed(pid(1))
        assert tracker.truncation_point(10) == 5

    def test_redirtied_restarts_rec_lsn(self):
        """The Iw/oF effect: an identity write advances the page's rLSN
        exactly the way flushing does (section 3.2)."""
        tracker = RecLSNTracker()
        tracker.mark_dirty(pid(0), 2)
        tracker.mark_redirtied(pid(0), 8)
        assert tracker.rec_lsn(pid(0)) == 8
        assert tracker.truncation_point(10) == 8

    def test_dirty_bookkeeping(self):
        tracker = RecLSNTracker()
        tracker.mark_dirty(pid(0), 1)
        tracker.mark_dirty(pid(1), 2)
        assert tracker.dirty_count() == 2
        assert tracker.dirty_pages() == {pid(0), pid(1)}
        tracker.mark_installed(pid(0))
        assert tracker.dirty_count() == 1
