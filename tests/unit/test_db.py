"""Unit tests for the Database facade."""

import pytest

from repro.db import Database
from repro.errors import NoBackupError, ReproError
from repro.ids import PageId
from repro.ops.logical import CopyOp
from repro.ops.physical import PhysicalWrite


def pid(slot):
    return PageId(0, slot)


class TestConstruction:
    def test_policy_by_name(self):
        for name in ("general", "tree", "page", "page-oriented"):
            Database(pages_per_partition=[8], policy=name)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ReproError):
            Database(pages_per_partition=[8], policy="quantum")

    def test_policy_instance_accepted(self):
        from repro.core.policy import TreeOpsPolicy

        db = Database(pages_per_partition=[8], policy=TreeOpsPolicy())
        assert db.cm.policy.name == "tree"

    def test_repr(self):
        assert "policy=general" in repr(Database(pages_per_partition=[8]))


class TestExecution:
    def test_execute_tracks_update_set(self):
        db = Database(pages_per_partition=[8])
        db.execute(PhysicalWrite(pid(0), "v"))
        assert db.updated_since_backup == {pid(0)}

    def test_execute_all(self):
        db = Database(pages_per_partition=[8])
        records = db.execute_all(
            [PhysicalWrite(pid(0), "a"), CopyOp(pid(0), pid(1))]
        )
        assert [r.lsn for r in records] == [1, 2]
        assert db.read(pid(1)) == "a"

    def test_dirty_page_count(self):
        db = Database(pages_per_partition=[8])
        db.execute(PhysicalWrite(pid(0), "v"))
        assert db.dirty_page_count() == 1
        db.checkpoint()
        assert db.dirty_page_count() == 0


class TestCrashRecovery:
    def test_recover_reproduces_oracle(self):
        db = Database(pages_per_partition=[8])
        db.execute(PhysicalWrite(pid(0), "a"))
        db.execute(CopyOp(pid(0), pid(1)))
        db.flush_page(pid(1))
        db.crash()
        outcome = db.recover()
        assert outcome.ok
        assert db.stable.read_page(pid(1)).value == "a"

    def test_crash_loses_unforced_tail(self):
        db = Database(pages_per_partition=[8], auto_force_log=False)
        db.execute(PhysicalWrite(pid(0), "kept"))
        db.log.force()
        db.execute(PhysicalWrite(pid(0), "lost"))
        lost = db.crash()
        assert lost == 1
        outcome = db.recover()
        assert outcome.ok
        assert db.stable.read_page(pid(0)).value == "kept"

    def test_crash_aborts_active_backup(self):
        db = Database(pages_per_partition=[8])
        db.start_backup(steps=2)
        db.crash()
        assert not db.backup_in_progress()
        assert db.latest_backup() is None


class TestMediaRecovery:
    def test_requires_a_backup(self):
        db = Database(pages_per_partition=[8])
        db.media_failure()
        with pytest.raises(NoBackupError):
            db.media_recover()

    def test_reads_fail_after_media_failure(self):
        from repro.errors import MediaFailureError

        db = Database(pages_per_partition=[8])
        db.media_failure()
        with pytest.raises(MediaFailureError):
            db.read(pid(0))

    def test_roll_forward_to_point_in_time(self):
        db = Database(pages_per_partition=[8])
        db.execute(PhysicalWrite(pid(0), "before"))
        db.checkpoint()
        db.start_backup(steps=2)
        backup = db.run_backup()
        target = db.log.end_lsn
        db.execute(PhysicalWrite(pid(0), "after"))
        db.media_failure()
        outcome = db.media_recover(backup=backup, to_lsn=target, verify=False)
        assert outcome.state[pid(0)].value == "before"

    def test_roll_forward_before_completion_rejected(self):
        from repro.errors import RecoveryError

        db = Database(pages_per_partition=[8])
        db.execute(PhysicalWrite(pid(0), "v"))
        db.start_backup(steps=2)
        backup = db.run_backup()
        db.media_failure()
        with pytest.raises(RecoveryError):
            db.media_recover(backup=backup, to_lsn=0, verify=False)
