"""Unit tests for the exhaustive interleaving explorer."""

import math

from repro.db import Database
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.sim.explorer import InterleavingExplorer, merges


class TestMerges:
    def test_single_track(self):
        assert list(merges([[1, 2, 3]])) == [(1, 2, 3)]

    def test_count_is_multinomial(self):
        tracks = [[1, 2], ["a", "b", "c"], ["x"]]
        expected = math.factorial(6) // (
            math.factorial(2) * math.factorial(3) * math.factorial(1)
        )
        assert len(list(merges(tracks))) == expected

    def test_all_unique(self):
        out = list(merges([[1, 2], ["a", "b"]]))
        assert len(out) == len(set(out))

    def test_no_tracks(self):
        assert list(merges([])) == [()]


class TestExplorer:
    def _trivial_scenario(self):
        def factory():
            db = Database(pages_per_partition=[8], policy="general")
            track = [
                lambda: db.execute(PhysicalWrite(PageId(0, 0), "a")),
                lambda: db.execute(PhysicalWrite(PageId(0, 1), "b")),
            ]

            def finish(database):
                database.checkpoint()
                database.start_backup(steps=2)
                return database.run_backup()

            return db, [track, [lambda: None]], finish

        return factory

    def test_counts_and_recovers(self):
        explorer = InterleavingExplorer(self._trivial_scenario())
        result = explorer.explore()
        assert result.interleavings == 3  # C(3,1)
        assert result.all_recovered

    def test_max_interleavings_cap(self):
        explorer = InterleavingExplorer(self._trivial_scenario())
        result = explorer.explore(max_interleavings=2)
        assert result.interleavings == 2

    def test_exceptions_recorded_as_failures(self):
        def factory():
            db = Database(pages_per_partition=[8], policy="general")
            track = [lambda: (_ for _ in ()).throw(RuntimeError("boom"))]

            def finish(database):
                return None

            return db, [track], finish

        result = InterleavingExplorer(factory).explore()
        assert not result.all_recovered
        assert "RuntimeError" in result.failures[0][1]

    def test_fault_specs_transient_absorbed(self):
        from repro.sim.faults import FaultKind, FaultSpec, IOPoint

        specs = [FaultSpec(FaultKind.TRANSIENT, point=IOPoint.LOG_APPEND,
                           at_io=1, times=2)]
        explorer = InterleavingExplorer(self._trivial_scenario(),
                                        fault_specs=specs)
        result = explorer.explore()
        assert result.interleavings == 3
        assert result.all_recovered

    def test_fault_specs_crash_turns_into_crash_recovery(self):
        from repro.sim.faults import FaultKind, FaultSpec

        # Crash at the 3rd I/O of every interleaving: each run must
        # survive via crash recovery instead of the media path.
        specs = [FaultSpec(FaultKind.CRASH, at_io=3)]
        explorer = InterleavingExplorer(self._trivial_scenario(),
                                        fault_specs=specs)
        result = explorer.explore()
        assert result.interleavings == 3
        assert result.all_recovered
