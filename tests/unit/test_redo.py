"""Unit tests for the LSN redo test and replayer."""

from repro.ids import NULL_LSN, PageId
from repro.ops.logical import CopyOp, GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.recovery.redo import POISON, RedoReplayer, surviving_poison
from repro.storage.page import PageVersion
from repro.wal.log_manager import LogManager


def pid(slot):
    return PageId(0, slot)


def logged(*ops):
    log = LogManager()
    return [log.append(op) for op in ops]


class TestRedoTest:
    def test_stale_target_replayed(self):
        records = logged(PhysicalWrite(pid(0), "v"))
        state = {}
        stats = RedoReplayer().replay(records, state)
        assert stats.ops_replayed == 1
        assert state[pid(0)].value == "v"
        assert state[pid(0)].page_lsn == 1

    def test_fresh_target_skipped(self):
        records = logged(PhysicalWrite(pid(0), "old"))
        state = {pid(0): PageVersion("newer", 5)}
        stats = RedoReplayer().replay(records, state)
        assert stats.ops_skipped == 1
        assert state[pid(0)].value == "newer"

    def test_state_never_reset(self):
        """LSN-based recovery never rolls a page backward."""
        records = logged(
            PhysicalWrite(pid(0), "first"),
            PhysicalWrite(pid(0), "second"),
        )
        state = {pid(0): PageVersion("second", 2)}
        RedoReplayer().replay(records, state)
        assert state[pid(0)].value == "second"

    def test_partial_replay_of_multi_write_op(self):
        records = logged(
            GeneralLogicalOp([pid(5)], [pid(0), pid(1)], "copy_value")
        )
        # pid(0) already carries the effect; pid(1) does not.
        state = {
            pid(5): PageVersion("src", NULL_LSN),
            pid(0): PageVersion("src", 1),
        }
        stats = RedoReplayer().replay(records, state)
        assert stats.partial_replays == 1
        assert state[pid(1)].value == "src"

    def test_replay_in_order_reconstructs_chain(self):
        records = logged(
            PhysicalWrite(pid(0), "seed"),
            CopyOp(pid(0), pid(1)),
            CopyOp(pid(1), pid(2)),
        )
        state = {}
        RedoReplayer().replay(records, state)
        assert state[pid(2)].value == "seed"


class TestPoison:
    def test_raising_transform_poisons_targets(self):
        class ExplodingOp(PhysiologicalWrite):
            def compute(self, reads):
                raise RuntimeError("garbage input")

        records = logged(ExplodingOp(pid(0), "increment"))
        state = {}
        stats = RedoReplayer().replay(records, state)
        assert stats.poisoned == [pid(0)]
        assert surviving_poison(state) == [pid(0)]

    def test_later_physical_record_cures_poison(self):
        class ExplodingOp(PhysiologicalWrite):
            def compute(self, reads):
                raise RuntimeError("garbage input")

        records = logged(
            ExplodingOp(pid(0), "increment"),
            PhysicalWrite(pid(0), "cured"),
        )
        state = {}
        RedoReplayer().replay(records, state)
        assert surviving_poison(state) == []
        assert state[pid(0)].value == "cured"

    def test_poison_singleton(self):
        assert POISON is type(POISON)()
