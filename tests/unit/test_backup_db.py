"""Unit tests for the backup database B."""

import pytest

from repro.errors import BackupError
from repro.ids import PageId
from repro.storage.backup_db import BackupDatabase, BackupStatus
from repro.storage.page import PageVersion


@pytest.fixture
def backup():
    return BackupDatabase(backup_id=1, media_scan_start_lsn=10)


class TestRecording:
    def test_records_pages_in_copy_order(self, backup):
        backup.record_page(PageId(0, 1), PageVersion("a", 1))
        backup.record_page(PageId(0, 0), PageVersion("b", 2))
        assert backup.copy_order() == [PageId(0, 1), PageId(0, 0)]
        assert backup.copied_count() == 2

    def test_duplicate_copy_rejected(self, backup):
        backup.record_page(PageId(0, 1), PageVersion("a", 1))
        with pytest.raises(BackupError):
            backup.record_page(PageId(0, 1), PageVersion("a", 1))

    def test_read_back(self, backup):
        backup.record_page(PageId(0, 1), PageVersion("a", 5))
        assert backup.read_page(PageId(0, 1)).page_lsn == 5
        assert backup.read_page(PageId(0, 2)) is None
        assert PageId(0, 1) in backup


class TestSealing:
    def test_complete_freezes_backup(self, backup):
        backup.complete(completion_lsn=42)
        assert backup.is_complete
        assert backup.completion_lsn == 42
        with pytest.raises(BackupError):
            backup.record_page(PageId(0, 0), PageVersion("x", 1))

    def test_double_complete_rejected(self, backup):
        backup.complete(1)
        with pytest.raises(BackupError):
            backup.complete(2)

    def test_abort(self, backup):
        backup.abort()
        assert backup.status is BackupStatus.ABORTED
        assert not backup.is_complete

    def test_abort_after_complete_is_noop(self, backup):
        backup.complete(1)
        backup.abort()
        assert backup.status is BackupStatus.COMPLETE

    def test_scan_start_preserved(self, backup):
        assert backup.media_scan_start_lsn == 10
