"""Unit tests for backup progress tracking (section 3.4, Figure 3)."""

import pytest

from repro.core.progress import BackupRegion, PartitionProgress
from repro.errors import BackupError


@pytest.fixture
def progress():
    return PartitionProgress(partition=0, size=100)


class TestIdleState:
    def test_everything_pending_between_backups(self, progress):
        assert not progress.active
        for pos in (0, 50, 99):
            assert progress.classify(pos) is BackupRegion.PEND

    def test_position_bounds_checked(self, progress):
        with pytest.raises(BackupError):
            progress.classify(-1)
        with pytest.raises(BackupError):
            progress.classify(100)


class TestStepProtocol:
    def test_begin_opens_first_doubt_region(self, progress):
        progress.begin(25)
        assert progress.active
        assert progress.classify(0) is BackupRegion.DOUBT
        assert progress.classify(24) is BackupRegion.DOUBT
        assert progress.classify(25) is BackupRegion.PEND

    def test_advance_moves_both_bounds(self, progress):
        progress.begin(25)
        progress.advance(50)
        assert progress.classify(10) is BackupRegion.DONE
        assert progress.classify(30) is BackupRegion.DOUBT
        assert progress.classify(60) is BackupRegion.PEND

    def test_figure3_full_walk(self, progress):
        """Done/Doubt/Pend counts evolve exactly as Figure 3 shows."""
        progress.begin(25)
        for boundary in (50, 75, 100):
            done = sum(
                progress.classify(p) is BackupRegion.DONE for p in range(100)
            )
            doubt = sum(
                progress.classify(p) is BackupRegion.DOUBT for p in range(100)
            )
            pend = sum(
                progress.classify(p) is BackupRegion.PEND for p in range(100)
            )
            assert done + doubt + pend == 100
            assert doubt == 25
            progress.advance(boundary)
        # Last step: nothing pending.
        assert progress.classify(99) is BackupRegion.DOUBT
        assert progress.classify(74) is BackupRegion.DONE
        progress.finish()
        assert not progress.active
        assert progress.classify(99) is BackupRegion.PEND

    def test_one_step_backup_knows_only_active(self, progress):
        """N=1 degenerates to an in-progress flag (section 3.4)."""
        progress.begin(100)
        for pos in (0, 99):
            assert progress.classify(pos) is BackupRegion.DOUBT
        progress.finish()


class TestProtocolErrors:
    def test_begin_twice_rejected(self, progress):
        progress.begin(25)
        with pytest.raises(BackupError):
            progress.begin(25)

    def test_advance_without_begin(self, progress):
        with pytest.raises(BackupError):
            progress.advance(10)

    def test_boundaries_must_increase(self, progress):
        progress.begin(25)
        with pytest.raises(BackupError):
            progress.advance(25)
        with pytest.raises(BackupError):
            progress.advance(10)

    def test_boundary_beyond_size_rejected(self, progress):
        progress.begin(25)
        with pytest.raises(BackupError):
            progress.advance(101)

    def test_finish_requires_last_step(self, progress):
        progress.begin(25)
        with pytest.raises(BackupError):
            progress.finish()

    def test_abort_resets(self, progress):
        progress.begin(25)
        progress.abort()
        assert not progress.active


class TestSuccessorClassification:
    def test_empty_successor_set_is_done(self, progress):
        """MIN_POS (no successors) classifies Done even at D=0."""
        progress.begin(25)
        assert progress.classify_successor_max(-1) is BackupRegion.DONE

    def test_successor_regions(self, progress):
        progress.begin(25)
        progress.advance(50)
        assert progress.classify_successor_max(10) is BackupRegion.DONE
        assert progress.classify_successor_max(30) is BackupRegion.DOUBT
        assert progress.classify_successor_max(70) is BackupRegion.PEND

    def test_counters(self, progress):
        progress.begin(25)
        progress.advance(50)
        assert progress.steps_taken == 2
        assert progress.backups_seen == 1
