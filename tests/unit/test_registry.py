"""Unit tests for the transform registry."""

import pytest

from repro.errors import OperationError
from repro.ops.registry import (
    TransformRegistry,
    as_records,
    default_registry,
    delete_record,
    insert_record,
    split_high,
    split_low,
)


class TestRegistry:
    def test_register_and_resolve(self):
        reg = TransformRegistry()
        reg.register("double", lambda v: v * 2)
        assert reg.resolve("double")(3) == 6
        assert "double" in reg

    def test_duplicate_rejected(self):
        reg = TransformRegistry()
        reg.register("f", lambda v: v)
        with pytest.raises(OperationError):
            reg.register("f", lambda v: v)

    def test_unknown_rejected(self):
        with pytest.raises(OperationError):
            TransformRegistry().resolve("missing")

    def test_default_registry_has_core_transforms(self):
        for name in (
            "increment",
            "insert_record",
            "delete_record",
            "remove_high",
            "take_high",
            "copy_value",
            "sort_records",
            "concat_sorted",
        ):
            assert name in default_registry


class TestRecordHelpers:
    def test_as_records_defensive(self):
        assert as_records(None) == ()
        assert as_records("garbage") == ()
        assert as_records((1, 2, 3)) == ()
        assert as_records(((1, "a"),)) == ((1, "a"),)

    def test_insert_overwrites_key(self):
        records = insert_record(((1, "a"),), 1, "b")
        assert records == ((1, "b"),)

    def test_insert_keeps_sorted(self):
        records = insert_record(((1, "a"), (3, "c")), 2, "b")
        assert records == ((1, "a"), (2, "b"), (3, "c"))

    def test_delete(self):
        assert delete_record(((1, "a"), (2, "b")), 1) == ((2, "b"),)

    def test_split_partitions(self):
        records = tuple((k, k) for k in range(6))
        high, low = split_high(records, 2), split_low(records, 2)
        assert tuple(sorted(high + low)) == records
        assert all(k > 2 for k, _ in high)
        assert all(k <= 2 for k, _ in low)


class TestBuiltinTransforms:
    def test_increment_handles_none(self):
        assert default_registry.resolve("increment")(None, 5) == 5

    def test_append(self):
        assert default_registry.resolve("append")((1,), 2) == (1, 2)
        assert default_registry.resolve("append")(None, 2) == (2,)

    def test_sort_records(self):
        fn = default_registry.resolve("sort_records")
        assert fn(((2, "b"), (1, "a"))) == ((1, "a"), (2, "b"))

    def test_concat_sorted_merges_by_page(self):
        from repro.ids import PageId

        fn = default_registry.resolve("concat_sorted")
        reads = {
            PageId(0, 1): ((3, "c"),),
            PageId(0, 0): ((1, "a"),),
        }
        assert fn(reads) == ((1, "a"), (3, "c"))
