"""Unit tests for the backup latch."""

import threading
import time

import pytest

from repro.core.latch import BackupLatch
from repro.errors import LatchError


@pytest.fixture
def latch():
    return BackupLatch(partition=0)


class TestSharedMode:
    def test_multiple_shared_holders(self, latch):
        latch.acquire_shared()
        latch.acquire_shared()
        assert latch.held_shared
        latch.release_shared()
        latch.release_shared()
        assert not latch.held_shared

    def test_release_without_hold(self, latch):
        with pytest.raises(LatchError):
            latch.release_shared()

    def test_shared_blocked_by_exclusive(self, latch):
        latch.acquire_exclusive()
        with pytest.raises(LatchError):
            latch.acquire_shared()


class TestExclusiveMode:
    def test_exclusive_blocked_by_shared(self, latch):
        latch.acquire_shared()
        with pytest.raises(LatchError):
            latch.acquire_exclusive()

    def test_exclusive_blocked_by_exclusive(self, latch):
        latch.acquire_exclusive()
        with pytest.raises(LatchError):
            latch.acquire_exclusive()

    def test_release_without_hold(self, latch):
        with pytest.raises(LatchError):
            latch.release_exclusive()


class TestContextManagers:
    def test_shared_scope(self, latch):
        with latch.shared():
            assert latch.held_shared
        assert not latch.held_shared

    def test_exclusive_scope(self, latch):
        with latch.exclusive():
            assert latch.held_exclusive
        assert not latch.held_exclusive

    def test_released_on_exception(self, latch):
        with pytest.raises(RuntimeError):
            with latch.exclusive():
                raise RuntimeError("boom")
        assert not latch.held_exclusive

    def test_acquisition_counters(self, latch):
        with latch.shared():
            pass
        with latch.exclusive():
            pass
        assert latch.shared_acquisitions == 1
        assert latch.exclusive_acquisitions == 1


class TestCrossThread:
    """Real-thread semantics: same-thread conflicts raise (the protocol
    bug they catch is a deadlock-in-waiting), cross-thread conflicts
    block until the holder releases."""

    def test_exclusive_blocks_other_thread_shared(self, latch):
        order = []
        latch.acquire_exclusive()

        def reader():
            latch.acquire_shared()  # must block until release below
            order.append("acquired")
            latch.release_shared()

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join(timeout=0.05)
        assert thread.is_alive(), "reader got the latch under exclusive"
        order.append("releasing")
        latch.release_exclusive()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert order == ["releasing", "acquired"]

    def test_shared_blocks_other_thread_exclusive(self, latch):
        latch.acquire_shared()
        acquired = threading.Event()

        def writer():
            latch.acquire_exclusive()
            acquired.set()
            latch.release_exclusive()

        thread = threading.Thread(target=writer)
        thread.start()
        assert not acquired.wait(timeout=0.05)
        latch.release_shared()
        thread.join(timeout=5)
        assert acquired.is_set()

    def test_stress_invariants(self, latch):
        """Hammer the latch from real threads; mutual exclusion and the
        shared counter must hold at every instant."""
        state = {"readers": 0, "writers": 0}
        violations = []
        check_lock = threading.Lock()
        rounds = 60

        def note(delta_readers, delta_writers):
            with check_lock:
                state["readers"] += delta_readers
                state["writers"] += delta_writers
                if state["writers"] > 1:
                    violations.append("two writers")
                if state["writers"] and state["readers"]:
                    violations.append("writer alongside readers")

        def reader():
            for index in range(rounds):
                with latch.shared():
                    note(+1, 0)
                    if index % 8 == 0:  # widen the hold so overlaps show
                        time.sleep(0.0005)
                    note(-1, 0)

        def writer():
            for index in range(rounds):
                with latch.exclusive():
                    note(0, +1)
                    if index % 8 == 0:
                        time.sleep(0.0005)
                    note(0, -1)

        threads = ([threading.Thread(target=reader) for _ in range(3)]
                   + [threading.Thread(target=writer) for _ in range(2)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert violations == []
        assert not latch.held_shared and not latch.held_exclusive
        assert latch.shared_acquisitions == 3 * rounds
        assert latch.exclusive_acquisitions == 2 * rounds
