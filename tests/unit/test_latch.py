"""Unit tests for the backup latch."""

import pytest

from repro.core.latch import BackupLatch
from repro.errors import LatchError


@pytest.fixture
def latch():
    return BackupLatch(partition=0)


class TestSharedMode:
    def test_multiple_shared_holders(self, latch):
        latch.acquire_shared()
        latch.acquire_shared()
        assert latch.held_shared
        latch.release_shared()
        latch.release_shared()
        assert not latch.held_shared

    def test_release_without_hold(self, latch):
        with pytest.raises(LatchError):
            latch.release_shared()

    def test_shared_blocked_by_exclusive(self, latch):
        latch.acquire_exclusive()
        with pytest.raises(LatchError):
            latch.acquire_shared()


class TestExclusiveMode:
    def test_exclusive_blocked_by_shared(self, latch):
        latch.acquire_shared()
        with pytest.raises(LatchError):
            latch.acquire_exclusive()

    def test_exclusive_blocked_by_exclusive(self, latch):
        latch.acquire_exclusive()
        with pytest.raises(LatchError):
            latch.acquire_exclusive()

    def test_release_without_hold(self, latch):
        with pytest.raises(LatchError):
            latch.release_exclusive()


class TestContextManagers:
    def test_shared_scope(self, latch):
        with latch.shared():
            assert latch.held_shared
        assert not latch.held_shared

    def test_exclusive_scope(self, latch):
        with latch.exclusive():
            assert latch.held_exclusive
        assert not latch.held_exclusive

    def test_released_on_exception(self, latch):
        with pytest.raises(RuntimeError):
            with latch.exclusive():
                raise RuntimeError("boom")
        assert not latch.held_exclusive

    def test_acquisition_counters(self, latch):
        with latch.shared():
            pass
        with latch.exclusive():
            pass
        assert latch.shared_acquisitions == 1
        assert latch.exclusive_acquisitions == 1
