"""Unit tests for offline backup validation."""

import pytest

from repro.db import Database
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.ops.tree import MovRec, RmvRec


def pid(slot):
    return PageId(0, slot)


@pytest.fixture
def db():
    database = Database(pages_per_partition=[32], policy="general")
    for slot in range(8):
        database.execute(PhysicalWrite(pid(slot), ("v", slot)))
    database.checkpoint()
    return database


class TestCleanBackups:
    def test_engine_backup_validates(self, db):
        db.start_backup(steps=4)
        db.run_backup()
        report = db.validate_backup()
        assert report.ok, report.findings
        assert report.pages_checked == 32

    def test_engine_backup_with_concurrent_splits_validates(self, db):
        old, new = pid(20), pid(2)
        db.execute(PhysicalWrite(old, tuple((k, k) for k in range(8))))
        db.checkpoint()
        db.start_backup(steps=4)
        db.backup_step(5)
        db.execute(MovRec(old, 3, new))
        db.execute(RmvRec(old, 3))
        db.checkpoint()
        db.run_backup()
        report = db.validate_backup()
        assert report.ok, report.findings

    def test_summary_format(self, db):
        db.start_backup(steps=4)
        db.run_backup()
        summary = db.validate_backup().summary()
        assert "OK" in summary


class TestBrokenBackups:
    def test_naive_dump_with_straddling_split_flagged(self, db):
        """The Figure 1 image fails validation with an order-violation
        finding — no restore needed to know it is unsafe."""
        old, new = pid(20), pid(2)
        db.execute(PhysicalWrite(old, tuple((k, k) for k in range(8))))
        db.checkpoint()
        db.naive.start_backup()
        db.naive.copy_some(5)
        db.execute(MovRec(old, 3, new))
        db.execute(RmvRec(old, 3))
        db.checkpoint()
        backup = db.naive.run_to_completion()
        report = db.validate_backup(backup=backup)
        assert not report.ok
        assert any(f.code == "order-violation" for f in report.findings)

    def test_incomplete_backup_flagged(self, db):
        db.start_backup(steps=4)
        run = db.engine.active
        report = db.validate_backup(backup=run.backup)
        assert not report.ok
        assert report.findings[0].code == "incomplete"
        db.run_backup()

    def test_truncated_log_flagged(self, db):
        db.start_backup(steps=4)
        backup = db.run_backup()
        db.execute(PhysiologicalWrite(pid(0), "stamp", ("x",)))
        db.flush_page(pid(0))
        db.retire_backup(backup)
        db.start_backup(steps=4)
        db.run_backup()
        db.truncate_log()
        report = db.validate_backup(backup=backup)
        assert not report.ok
        assert report.findings[0].code == "log-truncated"


class TestIncrementalValidation:
    def test_incremental_warns_without_base(self, db):
        db.start_backup(steps=4)
        db.run_backup()
        db.execute(PhysiologicalWrite(pid(3), "stamp", ("x",)))
        db.start_backup(steps=4, incremental=True)
        incremental = db.run_backup()
        report = db.validate_backup(backup=incremental)
        assert report.ok  # warning, not fatal
        assert any(f.code == "needs-base" for f in report.findings)

    def test_incremental_with_base_chain_validates(self, db):
        db.start_backup(steps=4)
        full = db.run_backup()
        db.execute(PhysiologicalWrite(pid(3), "stamp", ("x",)))
        db.start_backup(steps=4, incremental=True)
        incremental = db.run_backup()
        report = db.validate_backup(
            backup=incremental, base_chain=[full]
        )
        assert report.ok
        assert not any(f.code == "needs-base" for f in report.findings)
