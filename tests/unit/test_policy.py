"""Unit tests for the flush policies (sections 3.5, 4.2, Figure 4)."""

import pytest

from repro.core.policy import (
    GeneralOpsPolicy,
    PageOrientedPolicy,
    TreeOpsPolicy,
)
from repro.core.progress import BackupRegion, PartitionProgress
from repro.core.tree_meta import TreeMeta


@pytest.fixture
def progress():
    """Mid-backup frontier: Done < 30, Doubt [30, 60), Pend >= 60."""
    p = PartitionProgress(0, 100)
    p.begin(30)
    p.advance(60)
    return p


@pytest.fixture
def idle():
    return PartitionProgress(0, 100)


class TestPageOrientedPolicy:
    def test_never_logs(self, progress):
        policy = PageOrientedPolicy()
        for pos in (0, 45, 99):
            assert not policy.decide(pos, progress, TreeMeta()).needs_iwof


class TestGeneralOpsPolicy:
    def test_pend_flushes_plainly(self, progress):
        decision = GeneralOpsPolicy().decide(80, progress, TreeMeta())
        assert not decision.needs_iwof
        assert decision.region is BackupRegion.PEND

    def test_done_logs(self, progress):
        decision = GeneralOpsPolicy().decide(10, progress, TreeMeta())
        assert decision.needs_iwof
        assert decision.region is BackupRegion.DONE

    def test_doubt_logs(self, progress):
        assert GeneralOpsPolicy().decide(45, progress, TreeMeta()).needs_iwof

    def test_idle_partition_never_logs(self, idle):
        for pos in (0, 50, 99):
            assert not GeneralOpsPolicy().decide(pos, idle, TreeMeta()).needs_iwof


class TestTreeOpsPolicy:
    def test_pend_x_never_logs(self, progress):
        meta = TreeMeta(max_succ=95, violation=True)
        assert not TreeOpsPolicy().decide(80, progress, meta).needs_iwof

    def test_done_successors_never_log(self, progress):
        """Done(S(X)): successors already copied; their later updates
        flush after X and cannot reach B."""
        meta = TreeMeta(max_succ=5)
        for pos in (10, 45):
            assert not TreeOpsPolicy().decide(pos, progress, meta).needs_iwof

    def test_no_successors_is_done(self, progress):
        meta = TreeMeta()  # MAX = MIN_POS
        assert not TreeOpsPolicy().decide(45, progress, meta).needs_iwof

    def test_done_x_with_doubt_successor_logs(self, progress):
        meta = TreeMeta(max_succ=45, violation=True)
        assert TreeOpsPolicy().decide(10, progress, meta).needs_iwof

    def test_doubt_x_with_pending_successor_logs(self, progress):
        meta = TreeMeta(max_succ=80, violation=True)
        assert TreeOpsPolicy().decide(45, progress, meta).needs_iwof

    def test_doubt_doubt_dagger_holds(self, progress):
        """Both in doubt, successor earlier in backup order: † holds."""
        meta = TreeMeta(max_succ=35, violation=False)
        assert not TreeOpsPolicy().decide(50, progress, meta).needs_iwof

    def test_doubt_doubt_violation_logs(self, progress):
        meta = TreeMeta(max_succ=55, violation=True)
        assert TreeOpsPolicy().decide(40, progress, meta).needs_iwof

    def test_idle_partition_never_logs(self, idle):
        meta = TreeMeta(max_succ=99, violation=True)
        assert not TreeOpsPolicy().decide(0, idle, meta).needs_iwof


class TestIncrementalWillBeCopied:
    def test_pend_outside_copy_set_treated_as_done(self, progress):
        """A pending page an incremental backup will not copy gives no
        guarantee: the policy must log it."""
        policy = GeneralOpsPolicy()
        decision = policy.decide(80, progress, TreeMeta(), will_be_copied=False)
        assert decision.needs_iwof
        assert decision.region is BackupRegion.DONE

    def test_done_region_unaffected_by_flag(self, progress):
        decision = GeneralOpsPolicy().decide(
            10, progress, TreeMeta(), will_be_copied=False
        )
        assert decision.needs_iwof


class TestDecisionMetadata:
    def test_reason_strings_present(self, progress):
        decision = GeneralOpsPolicy().decide(10, progress, TreeMeta())
        assert decision.reason
        decision = TreeOpsPolicy().decide(80, progress, TreeMeta())
        assert decision.successor_region is not None
