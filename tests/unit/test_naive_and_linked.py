"""Unit tests for the two baselines: naive fuzzy dump and linked flush."""

import pytest

from repro.db import Database
from repro.errors import BackupError
from repro.ids import PageId
from repro.ops.logical import CopyOp
from repro.ops.physical import PhysicalWrite


def pid(slot):
    return PageId(0, slot)


@pytest.fixture
def db():
    return Database(pages_per_partition=[16], policy="general")


class TestNaiveFuzzyDump:
    def test_copies_everything_without_touching_progress(self, db):
        db.naive.start_backup()
        backup = db.naive.run_to_completion()
        assert backup.copied_count() == 16
        assert not db.cm.progress[0].active
        assert db.cm.latches[0].exclusive_acquisitions == 0

    def test_no_iwof_is_ever_generated(self, db):
        db.execute(PhysicalWrite(pid(0), "x"))
        db.naive.start_backup()
        db.naive.copy_some(4)
        db.execute(CopyOp(pid(0), pid(8)))
        db.checkpoint()
        db.naive.run_to_completion()
        assert db.log.iwof_count() == 0

    def test_double_start_rejected(self, db):
        db.naive.start_backup()
        with pytest.raises(BackupError):
            db.naive.start_backup()

    def test_copy_without_start_rejected(self, db):
        with pytest.raises(BackupError):
            db.naive.copy_some(1)

    def test_correct_for_page_oriented_ops(self):
        """With page-oriented ops the naive dump IS recoverable (§1.2)."""
        db = Database(pages_per_partition=[16], policy="page")
        for slot in range(8):
            db.execute(PhysicalWrite(pid(slot), ("v", slot)))
        db.naive.start_backup()
        db.naive.copy_some(8)
        for slot in range(8):
            db.execute(PhysicalWrite(pid(slot), ("v2", slot)))
        db.checkpoint()
        backup = db.naive.run_to_completion()
        db.media_failure()
        outcome = db.media_recover(backup=backup)
        assert outcome.ok


class TestLinkedFlush:
    def test_backup_is_current_and_recoverable(self, db):
        db.execute(PhysicalWrite(pid(0), "a"))
        db.execute(CopyOp(pid(0), pid(1)))
        backup = db.linked.run()
        # Linked flush forces everything through: B holds current values.
        assert backup.read_page(pid(1)).value == "a"
        db.media_failure()
        assert db.media_recover(backup=backup).ok

    def test_cost_is_counted(self, db):
        for slot in range(8):
            db.execute(PhysicalWrite(pid(slot), slot))
        db.linked.run()
        assert db.linked.forced_flushes == 8
        assert db.linked.pages_copied == 16
        assert db.metrics.linked_flushes == 8
