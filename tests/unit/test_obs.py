"""Unit tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.core.config import BackupConfig
from repro.db import Database
from repro.ids import PageId
from repro.obs import events as ev
from repro.obs.summary import summarize, summarize_file
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    load_jsonl,
    write_jsonl,
)
from repro.ops.physical import PhysicalWrite
from repro.recovery.explain import render_timeline
from repro.sim.metrics import Metrics, PhaseTiming


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.emit("anything", x=1) is None
        assert NULL_TRACER.events == ()

    def test_span_is_shared_noop_context_manager(self):
        a = NULL_TRACER.span("one")
        b = NULL_TRACER.span("two", detail=3)
        assert a is b  # one shared object, no allocation per span
        with a:
            pass

    def test_singleton_has_no_instance_dict(self):
        with pytest.raises(AttributeError):
            NULL_TRACER.stray = 1

    def test_kind_is_positional_only(self):
        # Event schemas carry their own "kind" field; the emit parameter
        # must not collide with it.
        NullTracer().emit("recovery_phase", kind="crash", phase="begin")


class TestTracer:
    def test_emit_assigns_monotone_seq_and_relative_time(self):
        tracer = Tracer()
        first = tracer.emit("crash")
        second = tracer.emit("crash")
        assert (first.seq, second.seq) == (1, 2)
        assert second.t >= first.t >= 0.0

    def test_span_emits_begin_end_with_duration(self):
        tracer = Tracer()
        with tracer.span("backup.sweep", pages=4):
            tracer.emit("crash")
        kinds = [e.kind for e in tracer.events]
        assert kinds == [ev.SPAN_BEGIN, "crash", ev.SPAN_END]
        end = tracer.events[-1]
        assert end.get("span") == "backup.sweep"
        assert end.get("pages") == 4
        assert end.get("ok") is True
        assert end.get("ms") >= 0.0

    def test_span_marks_failure_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("recovery.crash.redo"):
                raise ValueError("boom")
        assert tracer.events[-1].get("ok") is False

    def test_span_feeds_metrics_phase_histograms(self):
        metrics = Metrics()
        tracer = Tracer(metrics=metrics)
        with tracer.span("recovery.crash.redo"):
            pass
        timing = metrics.phase_timings["recovery.crash.redo"]
        assert timing.count == 1
        assert timing.total_s >= 0.0

    def test_capacity_keeps_only_the_tail(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.emit("crash", i=i)
        assert len(tracer.events) == 3
        assert [e.get("i") for e in tracer.events] == [7, 8, 9]
        assert tracer.events[-1].seq == 10  # seq keeps counting

    def test_find_filters_by_kind(self):
        tracer = Tracer()
        tracer.emit("crash")
        tracer.emit("media_failure")
        tracer.emit("crash")
        assert len(tracer.find("crash")) == 2

    def test_clear(self):
        tracer = Tracer()
        tracer.emit("crash")
        tracer.clear()
        assert len(tracer) == 0


class TestJsonlRoundTrip:
    def test_round_trip_preserves_kind_fields(self, tmp_path):
        # fault_injected / recovery_phase events carry a field literally
        # named "kind"; it must not clobber the event kind on round-trip.
        tracer = Tracer()
        tracer.emit(ev.FAULT_INJECTED, kind="torn",
                    point="stable.write_multi", io=7)
        tracer.emit(ev.RECOVERY_PHASE, kind="crash", phase="redo",
                    replayed=3, skipped=1)
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(str(path)) == 2
        events = load_jsonl(str(path))
        assert [e.kind for e in events] == [ev.FAULT_INJECTED,
                                            ev.RECOVERY_PHASE]
        assert events[0].get("kind") == "torn"
        assert events[1].get("kind") == "crash"
        assert events[1].get("replayed") == 3

    def test_lines_are_flat_json_objects(self, tmp_path):
        tracer = Tracer()
        tracer.emit(ev.CRASH, lost_records=2)
        path = tmp_path / "t.jsonl"
        tracer.write_jsonl(str(path))
        line = json.loads(path.read_text().splitlines()[0])
        assert line["ev"] == ev.CRASH
        assert line["lost_records"] == 2
        assert "seq" in line and "t" in line

    def test_extra_tags_every_line_and_append_mode(self, tmp_path):
        path = tmp_path / "t.jsonl"
        one = [TraceEvent(1, 0.0, ev.CRASH, {})]
        two = [TraceEvent(1, 0.0, ev.MEDIA_FAILURE, {})]
        write_jsonl(one, str(path), mode="w", extra={"case": 0})
        write_jsonl(two, str(path), mode="a", extra={"case": 1})
        events = load_jsonl(str(path))
        assert [e.get("case") for e in events] == [0, 1]


class TestEventSchema:
    def test_all_kinds_have_field_specs(self):
        for kind in ev.ALL_KINDS:
            assert isinstance(ev.EVENT_FIELDS[kind], tuple)

    def test_validate_event_flags_unknown_kind(self):
        assert ev.validate_event("nope", {}) == ["unknown event kind 'nope'"]

    def test_validate_event_flags_missing_fields(self):
        problems = ev.validate_event(ev.FAULT_INJECTED, {"kind": "torn"})
        assert any("point" in p for p in problems)
        assert any("io" in p for p in problems)

    def test_validate_event_accepts_extra_fields(self):
        assert ev.validate_event(
            ev.CRASH, {"lost_records": 1, "flushed_lsn": 9}
        ) == []

    def test_emitted_events_conform_to_schema(self):
        """Every event a full backup+crash+recovery run emits validates."""
        tracer = Tracer()
        db = Database(pages_per_partition=[32], tracer=tracer)
        for i in range(12):
            db.execute(PhysicalWrite(PageId(0, i), (i,)))
        db.start_backup(BackupConfig(steps=4))
        db.run_backup(BackupConfig(pages_per_tick=8))
        db.crash()
        assert db.recover().ok
        assert tracer.events, "instrumentation emitted nothing"
        problems = [
            problem
            for event in tracer.events
            for problem in ev.validate_event(event.kind, event.fields)
        ]
        assert problems == []


class TestPhaseTiming:
    def test_observe_accumulates(self):
        timing = PhaseTiming()
        timing.observe(0.002)
        timing.observe(0.010)
        assert timing.count == 2
        assert timing.total_s == pytest.approx(0.012)
        assert timing.min_s == pytest.approx(0.002)
        assert timing.max_s == pytest.approx(0.010)
        assert timing.mean_s == pytest.approx(0.006)

    def test_power_of_two_ms_buckets(self):
        assert PhaseTiming.bucket_label(0.0005) == "<1ms"
        assert PhaseTiming.bucket_label(0.0015) == "<2ms"
        assert PhaseTiming.bucket_label(0.003) == "<4ms"
        assert PhaseTiming.bucket_label(0.1) == "<128ms"

    def test_metrics_observe_phase_and_summary(self):
        metrics = Metrics()
        metrics.observe_phase("backup.sweep", 0.004)
        metrics.observe_phase("backup.sweep", 0.0001)
        summary = metrics.phase_summary()
        assert summary["backup.sweep"]["count"] == 2
        assert "<1ms" in summary["backup.sweep"]["buckets"]


class TestInstrumentationSites:
    def _traced_run(self):
        tracer = Tracer()
        db = Database(pages_per_partition=[32], tracer=tracer)
        for i in range(12):
            db.execute(PhysicalWrite(PageId(0, i), (i,)))
        db.start_backup(BackupConfig(steps=4))
        db.run_backup(BackupConfig(pages_per_tick=8))
        return tracer, db

    def test_backup_lifecycle_events(self):
        tracer, _ = self._traced_run()
        assert len(tracer.find(ev.BACKUP_BEGIN)) == 1
        assert len(tracer.find(ev.BACKUP_COMPLETE)) == 1
        advances = tracer.find(ev.BACKUP_STEP_ADVANCE)
        assert advances and all(
            e.get("step") >= 1 for e in advances
        )

    def test_latch_acquisitions_traced(self):
        tracer, _ = self._traced_run()
        latches = tracer.find(ev.LATCH_ACQUIRE)
        assert latches
        assert {e.get("mode") for e in latches} <= {"shared", "exclusive"}

    def test_flush_decisions_and_iwof_traced(self):
        tracer = Tracer()
        db = Database(pages_per_partition=[16], tracer=tracer)
        for i in range(8):
            db.execute(PhysicalWrite(PageId(0, i), (i,)))
        db.start_backup(BackupConfig(steps=2))
        # Interleave updates with the sweep so some flush decisions land
        # in the in-progress regions.
        while db.backup_in_progress():
            db.backup_step(2)
            db.execute(PhysicalWrite(PageId(0, 1), ("again",)))
            db.install_some(4)
        decisions = tracer.find(ev.FLUSH_DECISION)
        assert decisions
        assert {e.get("region") for e in decisions} <= {
            "done", "doubt", "pend"
        }

    def test_log_force_traced_when_not_autoforced(self):
        tracer = Tracer()
        db = Database(pages_per_partition=[16], auto_force_log=False,
                      tracer=tracer)
        db.execute(PhysicalWrite(PageId(0, 0), ("x",)))
        db.log.force()
        forces = tracer.find(ev.LOG_FORCE)
        assert len(forces) == 1
        assert forces[0].get("lsn") == db.log.flushed_lsn

    def test_crash_and_recovery_phases_traced(self):
        tracer, db = self._traced_run()
        db.crash()
        assert db.recover().ok
        assert tracer.find(ev.CRASH)
        phases = [
            (e.get("kind"), e.get("phase"))
            for e in tracer.find(ev.RECOVERY_PHASE)
        ]
        assert ("crash", "begin") in phases
        assert ("crash", "redo") in phases
        assert ("crash", "complete") in phases
        assert tracer.find(ev.REDO_OP)

    def test_attach_tracer_after_construction(self):
        db = Database(pages_per_partition=[16])
        assert db.tracer is NULL_TRACER
        tracer = Tracer()
        db.attach_tracer(tracer)
        assert db.cm.tracer is tracer
        assert db.log.tracer is tracer
        assert tracer.metrics is db.metrics
        db.execute(PhysicalWrite(PageId(0, 0), ("x",)))
        db.start_backup(BackupConfig(steps=1))
        db.run_backup(BackupConfig(pages_per_tick=32))
        assert tracer.find(ev.BACKUP_COMPLETE)

    def test_fault_plane_injections_traced(self):
        from repro.sim.faults import FaultKind, FaultPlane, FaultSpec, IOPoint

        tracer = Tracer()
        db = Database(pages_per_partition=[16], tracer=tracer)
        db.attach_faults(FaultPlane([
            FaultSpec(FaultKind.TRANSIENT, point=IOPoint.STABLE_MULTI_WRITE,
                      at_io=1, times=1)
        ]))
        for i in range(4):
            db.execute(PhysicalWrite(PageId(0, i), (i,)))
        db.cm.flush_page(PageId(0, 0))
        faults = tracer.find(ev.FAULT_INJECTED)
        assert len(faults) == 1
        assert faults[0].get("kind") == "transient"
        assert faults[0].get("point") == IOPoint.STABLE_MULTI_WRITE


class TestSummaryAndTimeline:
    def _failed_recovery_trace(self):
        tracer = Tracer()
        tracer.emit(ev.TRACE_HEADER, scenario="unit")
        tracer.emit(ev.FAULT_INJECTED, kind="crash",
                    point="stable.write_multi", io=9)
        tracer.emit(ev.RECOVERY_PHASE, kind="crash", phase="verify",
                    diffs=2, poisoned=0)
        tracer.emit(ev.RECOVERY_PHASE, kind="crash", phase="complete",
                    ok=False)
        return tracer.events

    def test_summarize_names_faults_and_phases(self):
        text = summarize(self._failed_recovery_trace())
        assert "crash at stable.write_multi" in text
        assert "crash:verify" in text
        assert "diffs=2" in text

    def test_summarize_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(self._failed_recovery_trace(), str(path))
        assert "stable.write_multi" in summarize_file(str(path))

    def test_summarize_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert "empty trace" in summarize_file(str(path))

    def test_timeline_links_fault_to_observing_phase(self):
        text = render_timeline(self._failed_recovery_trace())
        assert "causality:" in text
        assert "crash at stable.write_multi (io #9)" in text
        assert "observed by crash recovery phase 'verify'" in text
        assert "observed by crash recovery phase 'complete'" in text

    def test_timeline_indents_spans_and_elides_redo_bursts(self):
        tracer = Tracer()
        with tracer.span("recovery.crash.redo"):
            for lsn in range(1, 20):
                tracer.emit(ev.REDO_OP, lsn=lsn, action="replay")
        text = render_timeline(tracer.events, max_redo_ops=5)
        assert "redo ops elided" in text
        # Events inside the span are indented one level.
        inner = [l for l in text.splitlines() if "redo_op" in l]
        assert inner and all(l.startswith("  ") for l in inner)

    def test_timeline_reports_unobserved_fault(self):
        tracer = Tracer()
        tracer.emit(ev.FAULT_INJECTED, kind="transient",
                    point="log.append", io=1)
        text = render_timeline(tracer.events)
        assert "no recovery phase observed damage" in text
