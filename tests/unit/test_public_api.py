"""The public API surface: ``__all__``, star import, and doctests."""

import doctest

import repro
import repro.core.config
import repro.db


class TestPublicSurface:
    def test_star_import_matches_all(self):
        namespace = {}
        exec("from repro import *", namespace)
        imported = sorted(k for k in namespace if k != "__builtins__")
        assert imported == sorted(repro.__all__)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_key_types_exported(self):
        # The documented public surface of the API redesign.
        for name in (
            "Database", "BackupConfig", "RecoveryOutcome", "CrashPlan",
            "IOFaultPlan", "FaultPlane", "FaultSpec", "FailureInjector",
            "SimulatedCrash", "TransientIOError", "TornWriteError",
        ):
            assert name in repro.__all__, name

    def test_package_doctest(self):
        failures, tested = doctest.testmod(repro, verbose=False)
        assert tested > 0
        assert failures == 0

    def test_config_doctest(self):
        failures, tested = doctest.testmod(repro.core.config, verbose=False)
        assert tested > 0
        assert failures == 0

    def test_db_doctest(self):
        failures, tested = doctest.testmod(repro.db, verbose=False)
        assert tested > 0
        assert failures == 0
