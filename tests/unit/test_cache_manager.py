"""Unit tests for the cache manager (sections 2.5, 3.3, 3.5)."""

import random

import pytest

from repro.cache.cache_manager import CacheManager
from repro.core.policy import GeneralOpsPolicy
from repro.errors import CacheError, FlushOrderError
from repro.ids import PageId
from repro.ops.logical import CopyOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.storage.layout import Layout
from repro.storage.stable_db import StableDatabase
from repro.wal.log_manager import LogManager
from repro.wal.records import RecordFlag


def pid(slot):
    return PageId(0, slot)


@pytest.fixture
def cm():
    stable = StableDatabase(Layout([32]))
    return CacheManager(stable, LogManager(), policy=GeneralOpsPolicy())


class TestExecute:
    def test_execute_applies_to_cache_not_stable(self, cm):
        cm.execute(PhysicalWrite(pid(0), "v"))
        assert cm.read_page(pid(0)) == "v"
        assert cm.stable.read_page(pid(0)).value is None
        assert cm.is_dirty(pid(0))

    def test_execute_returns_record_with_lsn(self, cm):
        record = cm.execute(PhysicalWrite(pid(0), "v"))
        assert record.lsn == 1
        assert cm.cached(pid(0)).page_lsn == 1

    def test_read_through_populates_cache(self, cm):
        cm.stable.write_page(pid(3), "stable-value", 0)
        assert cm.read_page(pid(3)) == "stable-value"
        assert cm.metrics.cache_misses == 1
        assert cm.read_page(pid(3)) == "stable-value"
        assert cm.metrics.cache_hits == 1

    def test_logical_op_reads_through_cache(self, cm):
        cm.stable.write_page(pid(1), "from-stable", 0)
        cm.execute(CopyOp(pid(1), pid(2)))
        assert cm.read_page(pid(2)) == "from-stable"


class TestInstall:
    def test_install_flushes_to_stable(self, cm):
        cm.execute(PhysicalWrite(pid(0), "v"))
        node = cm.graph.holder_of(pid(0))
        cm.install_node(node)
        assert cm.stable.read_page(pid(0)).value == "v"
        assert not cm.is_dirty(pid(0))
        assert len(cm.graph) == 0

    def test_install_respects_write_graph_order(self, cm):
        cm.execute(PhysicalWrite(pid(0), "v"))
        cm.execute(CopyOp(pid(0), pid(1)))
        cm.execute(PhysiologicalWrite(pid(0), "stamp", ("tag",)))
        blocked = cm.graph.holder_of(pid(0))
        with pytest.raises(FlushOrderError):
            cm.install_node(blocked)

    def test_flush_page_cascades(self, cm):
        cm.execute(PhysicalWrite(pid(0), ("r",)))
        cm.execute(CopyOp(pid(0), pid(1)))
        cm.execute(PhysiologicalWrite(pid(0), "stamp", ("tag",)))
        assert cm.flush_page(pid(0), cascade=True)
        assert not cm.dirty_pages()

    def test_flush_clean_page_returns_false(self, cm):
        assert not cm.flush_page(pid(9))

    def test_checkpoint_empties_graph(self, cm, rng=random.Random(1)):
        pages = [pid(i) for i in range(8)]
        for _ in range(40):
            src, dst = rng.sample(pages, 2)
            cm.execute(CopyOp(src, dst))
        cm.checkpoint()
        assert not cm.dirty_pages()
        assert len(cm.graph) == 0
        for page in pages:
            assert cm.stable.read_page(page).value == cm.read_page(page)

    def test_truncation_advances_on_install(self, cm):
        cm.execute(PhysicalWrite(pid(0), "a"))
        cm.execute(PhysicalWrite(pid(1), "b"))
        assert cm.stable_truncation_point == 1
        cm.flush_page(pid(0))
        assert cm.stable_truncation_point == 2
        cm.flush_page(pid(1))
        assert cm.stable_truncation_point == 3


class TestIwofDuringBackup:
    def _start_fake_backup(self, cm, pending):
        with cm.progress_transaction(0) as progress:
            progress.begin(pending)

    def test_pending_page_flushes_without_logging(self, cm):
        self._start_fake_backup(cm, pending=5)
        cm.execute(PhysicalWrite(pid(20), "v"))
        cm.flush_page(pid(20))
        assert cm.metrics.iwof_during_backup == 0
        assert cm.metrics.flush_decisions_during_backup == 1

    def test_doubt_page_is_identity_logged_and_flushed(self, cm):
        self._start_fake_backup(cm, pending=30)
        cm.execute(PhysicalWrite(pid(3), "v"))
        cm.flush_page(pid(3))
        assert cm.metrics.iwof_during_backup == 1
        assert cm.log.iwof_count() == 1
        # Flushed as well (section 3.5: log and flush before dropping).
        assert cm.stable.read_page(pid(3)).value == "v"
        # The flushed page carries the identity write's LSN.
        assert cm.stable.read_page(pid(3)).page_lsn == cm.log.end_lsn

    def test_no_decisions_counted_when_idle(self, cm):
        cm.execute(PhysicalWrite(pid(3), "v"))
        cm.flush_page(pid(3))
        assert cm.metrics.flush_decisions_during_backup == 0


class TestIdentityInstall:
    def test_hot_page_installed_without_flush(self, cm):
        """Section 5.3: logging can substitute for flushing in S too."""
        cm.execute(PhysicalWrite(pid(0), "hot"))
        record = cm.identity_install(pid(0))
        assert record.op.value == "hot"
        # Page still dirty and cached, but the log can now be truncated
        # past the original update.
        assert cm.is_dirty(pid(0))
        assert cm.rec.rec_lsn(pid(0)) == record.lsn
        assert cm.stable.read_page(pid(0)).value is None

    def test_identity_install_requires_dirty_page(self, cm):
        with pytest.raises(CacheError):
            cm.identity_install(pid(0))

    def test_identity_install_unblocks_successors(self, cm):
        """Iw/oF reduces vars(n) without flushing (section 3.2)."""
        cm.execute(PhysicalWrite(pid(0), ("r",)))
        cm.execute(CopyOp(pid(0), pid(1)))   # node(1) -> node holding 0
        cm.execute(PhysiologicalWrite(pid(0), "stamp", ("t",)))
        blocked = cm.graph.holder_of(pid(0))
        assert not cm.graph.is_installable(blocked)
        cm.identity_install(pid(1))
        # The old holder of 1 dissolves; pid(0)'s node becomes installable
        # once its predecessor's obligations are met via the log.
        new_holder = cm.graph.holder_of(pid(0))
        assert cm.graph.is_installable(new_holder)


class TestCrash:
    def test_crash_clears_volatile_state(self, cm):
        cm.execute(PhysicalWrite(pid(0), "v"))
        with cm.progress_transaction(0) as progress:
            progress.begin(10)
        cm.crash()
        assert not cm.dirty_pages()
        assert len(cm.graph) == 0
        assert not cm.progress[0].active

    def test_stable_survives_crash(self, cm):
        cm.execute(PhysicalWrite(pid(0), "v"))
        cm.flush_page(pid(0))
        cm.crash()
        assert cm.stable.read_page(pid(0)).value == "v"


class TestEviction:
    def test_evict_dirty_page_flushes_first(self, cm):
        cm.execute(PhysicalWrite(pid(0), "v"))
        cm.evict(pid(0))
        assert cm.cached(pid(0)) is None
        assert cm.stable.read_page(pid(0)).value == "v"

    def test_evict_clean_page(self, cm):
        cm.read_page(pid(0))
        cm.evict(pid(0))
        assert cm.cached(pid(0)) is None
