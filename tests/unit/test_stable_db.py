"""Unit tests for the stable database S."""

import pytest

from repro.errors import MediaFailureError, PageNotFoundError
from repro.ids import PageId
from repro.storage.layout import Layout
from repro.storage.page import PageVersion
from repro.storage.stable_db import StableDatabase


@pytest.fixture
def stable():
    return StableDatabase(Layout([8]), initial_value=())


class TestReadsAndWrites:
    def test_initial_value(self, stable):
        assert stable.read_page(PageId(0, 0)).value == ()

    def test_write_then_read(self, stable):
        stable.write_page(PageId(0, 1), ("v",), 5)
        version = stable.read_page(PageId(0, 1))
        assert version.value == ("v",)
        assert version.page_lsn == 5

    def test_unknown_page(self, stable):
        with pytest.raises(PageNotFoundError):
            stable.read_page(PageId(0, 99))

    def test_write_count_tracked(self, stable):
        stable.write_page(PageId(0, 0), 1, 1)
        stable.write_page(PageId(0, 1), 2, 2)
        assert stable.page_writes == 2

    def test_contains_and_len(self, stable):
        assert PageId(0, 3) in stable
        assert PageId(0, 9) not in stable
        assert len(stable) == 8


class TestAtomicMultiPageWrites:
    def test_installs_all_pages(self, stable):
        stable.write_pages_atomically(
            {
                PageId(0, 0): PageVersion("a", 3),
                PageId(0, 1): PageVersion("b", 3),
            }
        )
        assert stable.read_page(PageId(0, 0)).value == "a"
        assert stable.read_page(PageId(0, 1)).value == "b"
        assert stable.multi_page_flushes == 1

    def test_all_or_nothing_on_bad_page(self, stable):
        before = stable.snapshot()
        with pytest.raises(PageNotFoundError):
            stable.write_pages_atomically(
                {
                    PageId(0, 0): PageVersion("a", 3),
                    PageId(0, 99): PageVersion("b", 3),
                }
            )
        assert stable.snapshot() == before

    def test_single_page_does_not_count_as_multi(self, stable):
        stable.install_version(PageId(0, 0), PageVersion("x", 1))
        assert stable.multi_page_flushes == 0


class TestMediaFailure:
    def test_reads_fail_after_media_failure(self, stable):
        stable.fail_media()
        with pytest.raises(MediaFailureError):
            stable.read_page(PageId(0, 0))

    def test_writes_fail_after_media_failure(self, stable):
        stable.fail_media()
        with pytest.raises(MediaFailureError):
            stable.write_page(PageId(0, 0), 1, 1)

    def test_restore_clears_failure(self, stable):
        stable.write_page(PageId(0, 2), "keep", 4)
        image = {PageId(0, 2): PageVersion("keep", 4)}
        stable.fail_media()
        stable.restore_from(image, initial_value=())
        assert stable.read_page(PageId(0, 2)).value == "keep"
        # Pages absent from the image are re-formatted.
        assert stable.read_page(PageId(0, 0)).value == ()

    def test_iter_pages_in_layout_order(self, stable):
        pages = [pid for pid, _ in stable.iter_pages()]
        assert pages == list(stable.layout.all_pages())
