"""Unit tests for BackupConfig and the unified backup/recovery API."""

import warnings

import pytest

from repro.core.config import BackupConfig
from repro.db import Database
from repro.errors import ReproError
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.recovery.explain import RecoveryOutcome


def pid(slot):
    return PageId(0, slot)


def seeded_db(pages=16):
    db = Database(pages_per_partition=[pages], policy="general")
    for slot in range(8):
        db.execute(PhysicalWrite(pid(slot), ("v", slot)))
    return db


class TestBackupConfig:
    def test_defaults(self):
        cfg = BackupConfig()
        assert cfg.steps == 8 and cfg.batched and cfg.engine == "engine"

    def test_frozen(self):
        cfg = BackupConfig()
        with pytest.raises(Exception):
            cfg.steps = 3

    def test_validation(self):
        with pytest.raises(ReproError):
            BackupConfig(steps=0)
        with pytest.raises(ReproError):
            BackupConfig(pages_per_tick=0)
        with pytest.raises(ReproError):
            BackupConfig(engine="tape")
        with pytest.raises(ReproError):
            BackupConfig(incremental=True, engine="naive")


class TestStartBackupAPI:
    def test_config_object_accepted(self):
        db = seeded_db()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            db.start_backup(BackupConfig(steps=2))
            backup = db.run_backup(BackupConfig(pages_per_tick=4))
        assert backup.is_complete

    def test_legacy_kwargs_warn_but_work(self):
        db = seeded_db()
        with pytest.warns(DeprecationWarning):
            db.start_backup(steps=2)
        with pytest.warns(DeprecationWarning):
            backup = db.run_backup(pages_per_tick=4)
        assert backup.is_complete

    def test_legacy_positional_int(self):
        db = seeded_db()
        with pytest.warns(DeprecationWarning):
            db.start_backup(2)
        assert db.backup_in_progress()

    def test_mixing_config_and_legacy_rejected(self):
        db = seeded_db()
        with pytest.raises(ReproError):
            db.start_backup(BackupConfig(), steps=4)

    def test_naive_engine_dispatch(self):
        db = seeded_db()
        db.start_backup(BackupConfig(steps=2, engine="naive"))
        assert db.backup_in_progress()
        backup = db.run_backup(BackupConfig(pages_per_tick=4,
                                            engine="naive"))
        assert backup.is_complete
        assert db.latest_backup() is backup
        assert db.naive.completed[-1] is backup

    def test_linked_engine_is_synchronous(self):
        db = seeded_db()
        with pytest.raises(ReproError):
            db.start_backup(BackupConfig(engine="linked"))
        backup = db.run_backup(BackupConfig(engine="linked"))
        assert backup.is_complete

    def test_incremental_via_config(self):
        db = seeded_db()
        db.start_backup(BackupConfig(steps=2))
        db.run_backup()
        db.execute(PhysicalWrite(pid(0), "changed"))
        db.start_backup(BackupConfig(steps=2, incremental=True))
        inc = db.run_backup()
        assert inc.is_complete
        assert db.media_recover_chain().ok


class TestUnifiedRecoveryOutcome:
    def test_all_entry_points_return_recovery_outcome(self):
        db = seeded_db()
        db.start_backup(BackupConfig(steps=2))
        db.run_backup()

        db.crash()
        assert isinstance(db.recover(), RecoveryOutcome)

        db.media_failure()
        outcome = db.media_recover()
        assert isinstance(outcome, RecoveryOutcome)
        assert outcome.kind == "media"

        assert isinstance(db.media_recover_chain(), RecoveryOutcome)

        db.fail_partition(0)
        part = db.recover_partition(0)
        assert isinstance(part, RecoveryOutcome)
        assert part.kind == "partition"

    def test_selective_returns_outcome_with_analysis(self):
        db = seeded_db()
        db.start_backup(BackupConfig(steps=2))
        db.run_backup()
        db.execute(PhysicalWrite(pid(1), "evil"), source="badapp")
        result = db.selective_recover("badapp")
        assert isinstance(result, RecoveryOutcome)
        assert result.kind == "selective"
        assert result.analysis is not None
        assert result.analysis.directly_corrupt

    def test_redone_alias_and_outcome_shim(self):
        db = seeded_db()
        db.crash()
        outcome = db.recover()
        assert outcome.redone == outcome.replayed
        with pytest.warns(DeprecationWarning):
            assert outcome.outcome is outcome

    def test_faults_survived_defaults_zero(self):
        db = seeded_db()
        db.crash()
        assert db.recover().faults_survived == 0
