"""Unit tests for the online backup engine (section 3)."""

import pytest

from repro.db import Database
from repro.errors import BackupError, BackupInProgressError
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite


def pid(slot):
    return PageId(0, slot)


@pytest.fixture
def db():
    return Database(pages_per_partition=[32], policy="general")


class TestBackupLifecycle:
    def test_copy_order_follows_backup_order(self, db):
        db.start_backup(steps=4)
        backup = db.run_backup(pages_per_tick=8)
        assert backup.copy_order() == list(db.layout.all_pages())
        assert backup.is_complete

    def test_progress_tracks_steps(self, db):
        run = db.start_backup(steps=4)
        progress = db.cm.progress[0]
        assert (progress.done, progress.pending) == (0, 8)
        db.backup_step(8)
        db.backup_step(1)  # triggers the step advance
        assert progress.done >= 8
        while db.backup_in_progress():
            db.backup_step(8)
        assert (progress.done, progress.pending) == (0, 0)
        assert progress.steps_taken == 4

    def test_second_backup_needs_first_sealed(self, db):
        db.start_backup(steps=2)
        with pytest.raises(BackupInProgressError):
            db.start_backup(steps=2)
        db.run_backup()
        db.start_backup(steps=2)  # now fine

    def test_scan_start_is_truncation_point(self, db):
        db.execute(PhysicalWrite(pid(0), "a"))   # LSN 1, dirty
        db.execute(PhysicalWrite(pid(1), "b"))   # LSN 2, dirty
        db.flush_page(pid(0))
        run = db.engine.start_backup(steps=2)
        assert run.backup.media_scan_start_lsn == 2

    def test_scan_start_with_clean_cache(self, db):
        db.execute(PhysicalWrite(pid(0), "a"))
        db.checkpoint()
        run = db.engine.start_backup(steps=2)
        assert run.backup.media_scan_start_lsn == db.log.end_lsn + 1

    def test_completion_lsn_recorded(self, db):
        db.execute(PhysicalWrite(pid(0), "a"))
        db.start_backup(steps=2)
        backup = db.run_backup()
        assert backup.completion_lsn == db.log.end_lsn

    def test_copy_without_active_backup_rejected(self, db):
        with pytest.raises(BackupError):
            db.engine.copy_some(1)

    def test_seal_before_finished_rejected(self, db):
        run = db.start_backup(steps=2)
        with pytest.raises(BackupError):
            run.seal()

    def test_abort_resets_progress(self, db):
        db.start_backup(steps=2)
        db.backup_step(4)
        db.engine.abort_active()
        assert not db.cm.progress[0].active
        assert db.latest_backup() is None
        assert db.metrics.backups_aborted == 1


class TestFuzziness:
    def test_backup_captures_mixed_states(self, db):
        """Pages flushed mid-sweep appear with their new values only in
        the not-yet-copied region — the fuzzy image."""
        for slot in range(32):
            db.execute(PhysicalWrite(pid(slot), ("old", slot)))
        db.checkpoint()
        db.start_backup(steps=4)
        db.backup_step(16)  # first half copied
        for slot in range(32):
            db.execute(PhysicalWrite(pid(slot), ("new", slot)))
        db.checkpoint()     # flush everything (with Iw/oF where needed)
        backup = db.run_backup()
        assert backup.read_page(pid(0)).value == ("old", 0)
        assert backup.read_page(pid(31)).value == ("new", 31)


class TestMultiPartition:
    def test_partitions_swept_in_parallel(self):
        db = Database(pages_per_partition=[8, 8], policy="general")
        db.start_backup(steps=2)
        db.backup_step(4)
        backup = db.engine.active.backup
        copied_partitions = {p.partition for p in backup.copy_order()}
        assert copied_partitions == {0, 1}
        db.run_backup()
        assert db.latest_backup().copied_count() == 16

    def test_per_partition_latches(self):
        db = Database(pages_per_partition=[8, 8], policy="general")
        db.start_backup(steps=2)
        db.run_backup()
        assert db.cm.latches[0].exclusive_acquisitions >= 2
        assert db.cm.latches[1].exclusive_acquisitions >= 2
