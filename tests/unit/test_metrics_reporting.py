"""Metrics-reporting bugfix regressions: snapshot coverage, the phantom
step-0 bug in ``record_decision``, and DeprecationWarning stacklevels."""

import dataclasses
import warnings

import pytest

from repro.core.config import BackupConfig
from repro.db import Database
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.recovery.explain import RecoveryOutcome
from repro.sim.metrics import Metrics


class TestSnapshotCoverage:
    def test_snapshot_covers_every_scalar_field(self):
        """Every int/float field of Metrics must appear in snapshot().

        ``snapshot()`` used to hand-list its keys and silently omitted
        newer counters (simulated_backoff_s, backups_aborted,
        backup_bulk_reads, identity_installs, multi_page_installs,
        linked_flushes, cache_hits, cache_misses).  It now enumerates
        ``dataclasses.fields``; this test pins that.
        """
        metrics = Metrics()
        snap = metrics.snapshot()
        scalar_fields = {
            spec.name
            for spec in dataclasses.fields(metrics)
            if isinstance(getattr(metrics, spec.name), (int, float))
        }
        missing = scalar_fields - set(snap)
        assert missing == set()

    def test_snapshot_includes_previously_omitted_counters(self):
        metrics = Metrics()
        metrics.simulated_backoff_s = 0.25
        metrics.backups_aborted = 2
        metrics.backup_bulk_reads = 3
        metrics.identity_installs = 4
        metrics.multi_page_installs = 5
        metrics.linked_flushes = 6
        metrics.cache_hits = 7
        metrics.cache_misses = 8
        snap = metrics.snapshot()
        assert snap["simulated_backoff_s"] == 0.25
        assert snap["backups_aborted"] == 2
        assert snap["backup_bulk_reads"] == 3
        assert snap["identity_installs"] == 4
        assert snap["multi_page_installs"] == 5
        assert snap["linked_flushes"] == 6
        assert snap["cache_hits"] == 7
        assert snap["cache_misses"] == 8

    def test_snapshot_keeps_derived_quantities(self):
        metrics = Metrics()
        metrics.record_decision("done", True, step=2)
        metrics.faults_injected["torn"] = 3
        snap = metrics.snapshot()
        assert snap["extra_logging_fraction"] == 1.0
        assert snap["faults_injected"] == 3


class TestStepAttribution:
    def test_record_decision_requires_step(self):
        """The step=0 default silently created a phantom step; the
        argument is now required."""
        with pytest.raises(TypeError):
            Metrics().record_decision("done", True)

    def test_backup_run_never_attributes_to_phantom_step_zero(self):
        """A real backup's flush decisions land in steps >= 1.

        ``PartitionProgress.steps_taken`` is 1-based once the backup has
        begun; a decision recorded at step 0 means a call site dropped
        the argument and §5's step fractions get a phantom row.
        """
        db = Database(pages_per_partition=[48])
        for i in range(24):
            db.execute(PhysicalWrite(PageId(0, i), (i,)))
        db.start_backup(BackupConfig(steps=6))
        counter = 0
        while db.backup_in_progress():
            db.backup_step(4)
            db.execute(PhysicalWrite(PageId(0, counter % 24), ("u", counter)))
            db.install_some(4)
            counter += 1
        assert db.metrics.flush_decisions_during_backup > 0
        assert 0 not in db.metrics.decisions_by_step
        assert 0 not in db.metrics.iwof_by_step
        assert all(step >= 1 for step in db.metrics.step_fractions())


class TestDeprecationStacklevels:
    """The warnings must blame the *caller's* line, not the library."""

    def test_legacy_backup_kwargs_warning_points_at_caller(self):
        db = Database(pages_per_partition=[16])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            db.start_backup(steps=2)
            warning = caught[0]
        assert issubclass(warning.category, DeprecationWarning)
        assert warning.filename == __file__

    def test_run_backup_legacy_kwarg_warning_points_at_caller(self):
        db = Database(pages_per_partition=[16])
        db.execute(PhysicalWrite(PageId(0, 0), ("x",)))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            db.start_backup(BackupConfig(steps=1))
            db.run_backup(pages_per_tick=64)
            warning = caught[0]
        assert issubclass(warning.category, DeprecationWarning)
        assert warning.filename == __file__

    def test_outcome_shim_warning_points_at_caller(self):
        outcome = RecoveryOutcome(state={}, replayed=0, skipped=0,
                                  poisoned=[])
        with pytest.warns(DeprecationWarning) as caught:
            assert outcome.outcome is outcome
        assert caught[0].filename == __file__
