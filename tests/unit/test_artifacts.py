"""Unit tests for CSV result artifacts."""

import csv
import os

from repro.harness import artifacts


class TestWriteCsv:
    def test_writes_header_and_rows(self, tmp_path):
        path = artifacts.write_csv(
            str(tmp_path / "out.csv"), ["a", "b"], [(1, 2), (3, 4)]
        )
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_parent_directories(self, tmp_path):
        path = artifacts.write_csv(
            str(tmp_path / "nested" / "dir" / "out.csv"), ["x"], [(1,)]
        )
        assert os.path.exists(path)


class TestFigureArtifacts:
    def test_fig4_grid_csv(self, tmp_path):
        path = artifacts.write_fig4(str(tmp_path), size=12)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 144
        # Policy and analytic agree on every cell.
        assert all(r["policy_logs"] == r["analytic_logs"] for r in rows)

    def test_quick_write_all(self, tmp_path):
        paths = artifacts.write_all(str(tmp_path), quick=True)
        assert len(paths) == 3
        for path in paths:
            assert os.path.getsize(path) > 0

    def test_fig5_csv_shape(self, tmp_path):
        path = artifacts.write_fig5(
            str(tmp_path), step_counts=(1, 2), seeds=(1,), pages=256
        )
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert {r["kind"] for r in rows} == {"general", "tree"}
        assert {r["steps"] for r in rows} == {"1", "2"}
