"""Unit tests for the hotspot workload generator."""

import itertools

import pytest

from repro.ops.base import OperationKind
from repro.storage.layout import Layout
from repro.workloads.skewed import hotspot_workload


def take(it, n):
    return list(itertools.islice(it, n))


class TestHotspotWorkload:
    def test_respects_count(self):
        layout = Layout([64])
        ops = list(hotspot_workload(layout, seed=1, count=50))
        assert len(ops) == 50

    def test_updates_concentrate_on_hot_set(self):
        layout = Layout([64])
        ops = take(
            hotspot_workload(
                layout, seed=1, hot_pages=4, hot_fraction=0.9,
                copy_fraction=0.0,
            ),
            600,
        )
        hot_slots = {0, 1, 2, 3}
        hot_hits = sum(
            1
            for op in ops
            if next(iter(op.writeset)).slot in hot_slots
        )
        assert hot_hits / len(ops) == pytest.approx(0.9, abs=0.06)

    def test_copies_read_hot_write_cold(self):
        layout = Layout([64])
        ops = take(
            hotspot_workload(layout, seed=2, copy_fraction=1.0), 50
        )
        for op in ops:
            assert op.kind is OperationKind.LOGICAL
            assert next(iter(op.readset)).slot < 4
            assert next(iter(op.writeset)).slot >= 4

    def test_hot_set_must_fit(self):
        layout = Layout([4])
        with pytest.raises(ValueError):
            next(hotspot_workload(layout, hot_pages=4))

    def test_deterministic(self):
        layout = Layout([64])
        a = [repr(op) for op in take(hotspot_workload(layout, seed=3), 40)]
        b = [repr(op) for op in take(hotspot_workload(layout, seed=3), 40)]
        assert a == b
