"""Unit tests for installation graphs (section 2.2)."""

from repro.ids import PageId
from repro.ops.logical import CopyOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.recovery.installation_graph import InstallationGraph
from repro.wal.log_manager import LogManager


def pid(slot):
    return PageId(0, slot)


def log_ops(*ops):
    log = LogManager()
    return [log.append(op) for op in ops]


class TestReadWriteEdges:
    def test_copy_then_overwrite_source(self):
        """copy(X, Y) then write(X): the copy must install first."""
        records = log_ops(
            CopyOp(pid(0), pid(1)),
            PhysiologicalWrite(pid(0), "increment"),
        )
        graph = InstallationGraph(records)
        assert graph.successors(1) == {2}
        assert graph.predecessors(2) == {1}

    def test_write_read_is_not_an_edge(self):
        """write(X) then copy(X, Y): no installation edge (section 2.2)."""
        records = log_ops(
            PhysicalWrite(pid(0), 1),
            CopyOp(pid(0), pid(1)),
        )
        graph = InstallationGraph(records)
        assert graph.successors(1) == frozenset()

    def test_reader_conflicts_with_every_later_writer(self):
        """The definition has no adjacency restriction: a read conflicts
        with EVERY later write of the page (readset(O) ∩ writeset(P))."""
        records = log_ops(
            CopyOp(pid(0), pid(1)),            # reads X
            PhysicalWrite(pid(0), 1),          # overwrites X
            PhysicalWrite(pid(0), 2),          # overwrites X again
        )
        graph = InstallationGraph(records)
        assert graph.successors(1) == {2, 3}
        assert graph.predecessors(3) == {1}

    def test_physiological_self_conflict_with_next_writer(self):
        records = log_ops(
            PhysiologicalWrite(pid(0), "increment"),
            PhysicalWrite(pid(0), 9),
        )
        graph = InstallationGraph(records)
        assert graph.successors(1) == {2}


class TestWriteWriteEdges:
    def test_excluded_by_default(self):
        records = log_ops(PhysicalWrite(pid(0), 1), PhysicalWrite(pid(0), 2))
        graph = InstallationGraph(records)
        assert graph.edges == []

    def test_included_on_request(self):
        records = log_ops(PhysicalWrite(pid(0), 1), PhysicalWrite(pid(0), 2))
        graph = InstallationGraph(records, include_write_write=True)
        assert [(e.src, e.dst, e.kind) for e in graph.edges] == [
            (1, 2, "write-write")
        ]


class TestPrefix:
    def _graph(self):
        return InstallationGraph(
            log_ops(
                CopyOp(pid(0), pid(1)),
                PhysiologicalWrite(pid(0), "increment"),
                CopyOp(pid(0), pid(2)),
                PhysiologicalWrite(pid(0), "increment"),
            )
        )

    def test_empty_and_full_are_prefixes(self):
        graph = self._graph()
        assert graph.is_prefix([])
        assert graph.is_prefix([1, 2, 3, 4])

    def test_valid_partial_prefix(self):
        graph = self._graph()
        assert graph.is_prefix([1])
        assert graph.is_prefix([1, 2, 3])

    def test_installed_without_predecessor_is_not_prefix(self):
        graph = self._graph()
        # op 2 overwrites X read by op 1: installing 2 without 1 breaks it.
        assert not graph.is_prefix([2])
        assert graph.prefix_violations([2]) == [(1, 2)]

    def test_independent_op_can_install_alone(self):
        graph = self._graph()
        # op 3 reads X (after op 2's write) and writes a fresh page: no
        # predecessor, because write-read conflicts are not edges.
        assert graph.is_prefix([3])
