"""The batched backup sweep: serial equivalence and bulk I/O paths.

The batched sweep (``BackupRun._copy_batched``) must copy exactly the
page set a serial round-robin sweep copies, move the D/P frontier at the
same positions, and trigger the same flush-policy decisions — only the
copy *order within one copy_some call* and the number of stable reads
may differ.  These tests drive both paths through identical interleaved
workloads and compare the observable outcomes, then cover the bulk
storage primitives directly.
"""

import random

import pytest

from repro.db import Database
from repro.errors import BackupError, MediaFailureError, PageNotFoundError
from repro.ids import PageId
from repro.storage.backup_db import BackupDatabase
from repro.storage.layout import Layout
from repro.storage.stable_db import StableDatabase
from repro.workloads import mixed_logical_workload


def run_sweep(batched, incremental=False, dynamic_extend=True):
    """One full backup scenario with a deterministic interleaved workload."""
    db = Database(pages_per_partition=[48, 32], policy="general")
    source = mixed_logical_workload(db.layout, seed=11, count=10**9)
    for _ in range(40):
        db.execute(next(source))
    if incremental:
        db.start_backup(steps=4, batched=batched)
        db.run_backup(pages_per_tick=16)
        for _ in range(25):
            db.execute(next(source))
        db.start_backup(
            steps=4,
            incremental=True,
            dynamic_extend=dynamic_extend,
            batched=batched,
        )
    else:
        db.start_backup(steps=4, batched=batched)
    rng = random.Random(5)

    def tick():
        for _ in range(3):
            db.execute(next(source))
        db.install_some(2, rng)

    backup = db.run_backup(pages_per_tick=7, tick=tick)
    return db, backup


class TestSerialEquivalence:
    @pytest.mark.parametrize("incremental,dynamic_extend", [
        (False, True),
        (True, True),
        (True, False),
    ])
    def test_same_backup_content_and_iwof(self, incremental, dynamic_extend):
        db_b, backup_b = run_sweep(
            True, incremental=incremental, dynamic_extend=dynamic_extend
        )
        db_s, backup_s = run_sweep(
            False, incremental=incremental, dynamic_extend=dynamic_extend
        )
        assert backup_b.pages() == backup_s.pages()
        assert backup_b.copied_count() == backup_s.copied_count()
        assert db_b.metrics.iwof_records == db_s.metrics.iwof_records
        assert db_b.metrics.iwof_during_backup == db_s.metrics.iwof_during_backup
        assert db_b.metrics.backup_pages_copied == db_s.metrics.backup_pages_copied

    def test_batched_recovers_like_serial(self):
        for batched in (True, False):
            db, backup = run_sweep(batched)
            db.media_failure()
            outcome = db.media_recover(backup=backup)
            assert outcome.ok

    def test_batched_uses_bulk_reads_serial_does_not(self):
        db_b, _ = run_sweep(True)
        db_s, _ = run_sweep(False)
        assert db_b.metrics.backup_bulk_reads > 0
        assert db_s.metrics.backup_bulk_reads == 0
        # Batching is the point: far fewer bulk reads than pages copied.
        assert db_b.metrics.backup_bulk_reads < db_b.metrics.backup_pages_copied

    def test_per_call_override(self):
        """A batched run can take serial steps (and vice versa) mid-sweep."""
        db = Database(pages_per_partition=[16], policy="general")
        run = db.start_backup(steps=2, batched=True)
        run.copy_some(5, batched=False)
        run.copy_some(5)  # run default: batched
        db.run_backup(pages_per_tick=4)
        assert db.latest_backup().copied_count() == 16


class TestBulkStoragePrimitives:
    def layout(self):
        return Layout([8, 8])

    def test_read_pages_returns_pairs_in_order(self):
        stable = StableDatabase(self.layout(), initial_value=0)
        ids = [PageId(1, 3), PageId(0, 2), PageId(1, 0)]
        entries = stable.read_pages(ids)
        assert [pid for pid, _ in entries] == ids
        for pid, version in entries:
            assert version == stable.read_page(pid)

    def test_read_pages_media_failure(self):
        stable = StableDatabase(self.layout(), initial_value=0)
        stable.fail_media()
        with pytest.raises(MediaFailureError):
            stable.read_pages([PageId(0, 0)])

    def test_read_pages_failed_partition(self):
        stable = StableDatabase(self.layout(), initial_value=0)
        stable.fail_partition(1)
        # Healthy partition still readable in bulk.
        assert len(stable.read_pages([PageId(0, 0), PageId(0, 1)])) == 2
        with pytest.raises(MediaFailureError):
            stable.read_pages([PageId(0, 0), PageId(1, 4)])

    def test_read_pages_unknown_page(self):
        stable = StableDatabase(self.layout(), initial_value=0)
        with pytest.raises(PageNotFoundError):
            stable.read_pages([PageId(0, 99)])

    def test_record_pages_bulk(self):
        stable = StableDatabase(self.layout(), initial_value=0)
        backup = BackupDatabase(backup_id=1, media_scan_start_lsn=1)
        entries = stable.read_pages([PageId(0, s) for s in range(4)])
        backup.record_pages(entries)
        assert backup.copied_count() == 4
        assert backup.copy_order() == [PageId(0, s) for s in range(4)]

    def test_record_pages_rejects_double_copy(self):
        stable = StableDatabase(self.layout(), initial_value=0)
        backup = BackupDatabase(backup_id=1, media_scan_start_lsn=1)
        backup.record_pages(stable.read_pages([PageId(0, 0)]))
        with pytest.raises(BackupError):
            backup.record_pages(stable.read_pages([PageId(0, 1), PageId(0, 0)]))

    def test_record_pages_rejects_sealed_backup(self):
        stable = StableDatabase(self.layout(), initial_value=0)
        backup = BackupDatabase(backup_id=1, media_scan_start_lsn=1)
        backup.complete(completion_lsn=1)
        with pytest.raises(BackupError):
            backup.record_pages(stable.read_pages([PageId(0, 0)]))
