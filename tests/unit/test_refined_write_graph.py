"""Unit tests for the refined / dynamic write graph rW (section 2.4)."""

import pytest

from repro.errors import FlushOrderError
from repro.ids import PageId
from repro.ops.identity import IdentityWrite
from repro.ops.logical import CopyOp, GeneralLogicalOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.recovery.refined_write_graph import (
    DynamicWriteGraph,
    build_refined_graph,
)
from repro.wal.log_manager import LogManager


def pid(slot):
    return PageId(0, slot)


def logged(*ops):
    log = LogManager()
    return [log.append(op) for op in ops]


class TestFigure2:
    """The paper's Figure 2: a blind write makes X unexposed.

    Operation A writes {X, Y}; operation C blindly writes X.  In W, one
    node holds {X, Y} atomically.  In rW, X moves to C's node and is
    removed from node 1's vars, leaving vars(1) = {Y}.
    """

    def test_blind_write_removes_object_from_flush_set(self):
        X, Y, src = pid(0), pid(1), pid(5)
        records = logged(
            GeneralLogicalOp([src], [X, Y], "copy_value"),  # A
            PhysicalWrite(X, 42),  # C: blind write of X
        )
        graph = build_refined_graph(records)
        nodes = graph.nodes()
        assert len(nodes) == 2
        node_a = next(n for n in nodes if n.op_lsns == [1])
        node_c = next(n for n in nodes if n.op_lsns == [2])
        assert node_a.vars == {Y}          # X removed: unexposed
        assert node_c.vars == {X}

    def test_contrast_with_w(self):
        """Same log in W: a single {X, Y} atomic node (see
        test_write_graph.TestW_GrowsMonotonically)."""
        from repro.recovery.write_graph import build_intersecting_writes_graph

        X, Y, src = pid(0), pid(1), pid(5)
        records = logged(
            GeneralLogicalOp([src], [X, Y], "copy_value"),
            PhysicalWrite(X, 42),
        )
        w_nodes = build_intersecting_writes_graph(records)
        rw = build_refined_graph(records)
        assert len(w_nodes) == 1 and w_nodes[0].vars == {X, Y}
        assert max(len(n.vars) for n in rw.nodes()) == 1


class TestInverseWriteReadEdges:
    def test_reader_must_install_before_blind_writer(self):
        X, A = pid(0), pid(1)
        records = logged(
            CopyOp(X, A),           # reads X's value v
            PhysicalWrite(X, 99),   # blindly overwrites v
        )
        graph = build_refined_graph(records)
        reader = graph.holder_of(A)
        writer = graph.holder_of(X)
        assert reader.node_id in writer.preds

    def test_identity_write_adds_no_edges_and_keeps_readers(self):
        X, A, B = pid(0), pid(1), pid(2)
        records = logged(
            CopyOp(X, A),             # reads X
            IdentityWrite(X, "same"),  # value unchanged: no edge
            PhysicalWrite(X, 99),      # real overwrite: edge from reader
        )
        graph = build_refined_graph(records)
        identity_node = next(
            n for n in graph.nodes() if n.op_lsns == [2]
        )
        assert not identity_node.preds
        writer = graph.holder_of(X)
        reader = graph.holder_of(A)
        assert reader.node_id in writer.preds


class TestMergingAndCycles:
    def test_intersecting_writes_merge(self):
        records = logged(
            PhysiologicalWrite(pid(0), "increment"),
            PhysiologicalWrite(pid(0), "increment"),
        )
        graph = build_refined_graph(records)
        assert len(graph) == 1
        assert graph.nodes()[0].op_lsns == [1, 2]

    def test_cycle_collapses(self):
        """copy(X,Y); copy(Y,X); stamp(Y) closes a cycle (see the W test
        of the same name) — rW must collapse it too."""
        records = logged(
            CopyOp(pid(0), pid(1)),
            CopyOp(pid(1), pid(0)),
            PhysiologicalWrite(pid(1), "stamp", ("t",)),
        )
        graph = build_refined_graph(records)
        assert len(graph) == 1
        assert graph.nodes()[0].vars == {pid(0), pid(1)}

    def test_path_between_merged_nodes_collapses_region(self):
        """Merging endpoints of a path must absorb the middle node."""
        X, Y, Z, W = pid(0), pid(1), pid(2), pid(3)
        records = logged(
            CopyOp(X, Y),    # node1 holds Y, reads X
            CopyOp(Y, Z),    # node2 holds Z, reads Y  (edge n1? no)
            PhysiologicalWrite(X, "increment"),   # node3 holds X; n1 -> n3
            PhysiologicalWrite(Y, "increment"),   # merges with n1; n2 -> n1'
            GeneralLogicalOp([W], [Z, X], "copy_value"),  # writes Z and X
        )
        graph = build_refined_graph(records)
        graph.check_acyclic()
        assert graph.vars_are_disjoint()

    def test_graph_always_acyclic_and_disjoint(self):
        import random

        rng = random.Random(4)
        log = LogManager()
        graph = DynamicWriteGraph()
        pages = [pid(i) for i in range(10)]
        for _ in range(300):
            roll = rng.random()
            if roll < 0.4:
                src, dst = rng.sample(pages, 2)
                op = CopyOp(src, dst)
            elif roll < 0.7:
                op = PhysiologicalWrite(rng.choice(pages), "increment")
            elif roll < 0.9:
                op = PhysicalWrite(rng.choice(pages), rng.randrange(100))
            else:
                reads = rng.sample(pages, 2)
                writes = rng.sample(pages, 2)
                op = GeneralLogicalOp(reads, writes, "concat_sorted")
            graph.add_operation(log.append(op))
            graph.check_acyclic()
            assert graph.vars_are_disjoint()


class TestInstalling:
    def test_install_requires_no_predecessors(self):
        records = logged(
            CopyOp(pid(0), pid(1)),
            PhysiologicalWrite(pid(0), "increment"),
        )
        graph = build_refined_graph(records)
        blocked = graph.holder_of(pid(0))
        with pytest.raises(FlushOrderError):
            graph.install_node(blocked)

    def test_install_releases_successors(self):
        records = logged(
            CopyOp(pid(0), pid(1)),
            PhysiologicalWrite(pid(0), "increment"),
        )
        graph = build_refined_graph(records)
        first = graph.holder_of(pid(1))
        vars_ = graph.install_node(first)
        assert vars_ == {pid(1)}
        second = graph.holder_of(pid(0))
        assert graph.is_installable(second)

    def test_installable_nodes_sorted_by_lsn(self):
        records = logged(
            PhysicalWrite(pid(3), 1),
            PhysicalWrite(pid(1), 1),
            PhysicalWrite(pid(2), 1),
        )
        graph = build_refined_graph(records)
        lsns = [n.ops[0].lsn for n in graph.installable_nodes()]
        assert lsns == [1, 2, 3]

    def test_holder_cleared_after_install(self):
        records = logged(PhysicalWrite(pid(0), 1))
        graph = build_refined_graph(records)
        graph.install_node(graph.holder_of(pid(0)))
        assert graph.holder_of(pid(0)) is None
        assert len(graph) == 0
