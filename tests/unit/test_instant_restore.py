"""Unit tests: instant restore internals and the PR's bugfix satellites.

Covers the restored-bitmap edge cases (including real-thread races
between on-demand and background restore), the observability fixes —
fallback generations are never rejected silently, out-of-layout replay
targets are never dropped silently — and the streamed single-pass
restore path (``restore_from`` over an iterable).
"""

import random
import threading
from collections import Counter

import pytest

from repro.core.config import BackupConfig
from repro.db import Database
from repro.errors import RecoveryError
from repro.ids import NULL_LSN, PageId
from repro.obs import events as ev
from repro.obs.tracer import Tracer
from repro.recovery.instant_restore import RestoredBitmap
from repro.recovery.media_recovery import (
    REJECT_DAMAGED,
    REJECT_LOG_TRUNCATED,
    REJECT_NOT_COMPLETE,
    REJECT_PAST_TARGET,
    _usable_fallback,
    install_recovered_page,
)
from repro.ops.physical import PhysicalWrite
from repro.sim.metrics import Metrics
from repro.storage.layout import Layout
from repro.storage.page import PageVersion, rot_value
from repro.storage.stable_db import StableDatabase


def pid(slot, partition=0):
    return PageId(partition, slot)


def rot_backup_page(backup, page_id):
    old = backup._versions[page_id]
    backup._versions[page_id] = PageVersion(
        rot_value(old.value), old.page_lsn
    )


def build_db(parts=4, size=8, post_writes=10):
    db = Database(pages_per_partition=[size] * parts, policy="general")
    pages = [PageId(p, s) for p in range(parts) for s in range(size)]
    for i, page in enumerate(pages):
        db.execute(PhysicalWrite(page, ("v", i)))
    db.start_backup(BackupConfig(steps=4))
    db.run_backup(BackupConfig(pages_per_tick=16))
    for i in range(post_writes):
        db.execute(PhysicalWrite(pages[i % len(pages)], ("post", i)))
    return db, pages


# ------------------------------------------------------------------- bitmap


class TestRestoredBitmap:
    def layout(self):
        return Layout([4, 2])

    def test_mark_is_idempotent(self):
        bitmap = RestoredBitmap(self.layout())
        assert bitmap.mark(pid(0))
        assert not bitmap.mark(pid(0))
        assert bitmap.pages_done(0) == 1
        assert bitmap.total_done == 1

    def test_partition_completion(self):
        bitmap = RestoredBitmap(self.layout())
        for slot in range(4):
            bitmap.mark(pid(slot))
        assert bitmap.partition_complete(0)
        assert not bitmap.partition_complete(1)
        assert not bitmap.complete
        bitmap.mark(pid(0, 1))
        bitmap.mark(pid(1, 1))
        assert bitmap.complete

    def test_is_restored(self):
        bitmap = RestoredBitmap(self.layout())
        assert not bitmap.is_restored(pid(3))
        bitmap.mark(pid(3))
        assert bitmap.is_restored(pid(3))


# --------------------------------------------------------------- lifecycle


class TestInstantRestoreLifecycle:
    def test_every_page_installed_exactly_once(self):
        """On-demand and background racing never double-install a page."""
        db, pages = build_db()
        db.media_failure()
        installs = Counter()
        lock = threading.Lock()
        orig = db.stable.install_version

        def counting(page_id, version):
            with lock:
                installs[page_id] += 1
            return orig(page_id, version)

        db.stable.install_version = counting
        manager = db.begin_instant_restore(workers=4)

        def hammer(seed):
            order = list(pages)
            random.Random(seed).shuffle(order)
            for page in order:
                manager.ensure_restored(page)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        outcome = db.finish_instant_restore()
        assert outcome.ok
        assert set(installs) >= set(pages)
        assert all(installs[page] == 1 for page in pages)
        metrics = db.metrics
        assert (
            metrics.pages_restored_on_demand
            + metrics.pages_restored_background
            == len(pages)
        )

    def test_mid_restore_write_survives_background_sweep(self):
        """A traffic write mid-restore must win over the eager restore."""
        db, pages = build_db()
        db.media_failure()
        db.begin_instant_restore(workers=2)
        victim = pages[-1]
        db.execute(PhysicalWrite(victim, "fresh"))
        db.finish_instant_restore()
        assert db.read(victim) == "fresh"

    def test_ttfq_metric_stamped_on_first_demand_read(self):
        db, pages = build_db()
        expected = db.oracle.state()
        db.media_failure()
        manager = db.begin_instant_restore(eager=False)
        assert db.metrics.time_to_first_query_ms == 0.0
        assert db.read(pages[3]) == expected[pages[3]]
        assert db.metrics.time_to_first_query_ms > 0.0
        assert manager.time_to_first_query_ms == (
            db.metrics.time_to_first_query_ms
        )
        assert db.metrics.pages_restored_on_demand == 1
        db.finish_instant_restore()

    def test_restore_progress_events(self):
        db, pages = build_db()
        tracer = Tracer()
        db.attach_tracer(tracer)
        db.media_failure()
        db.begin_instant_restore(eager=False)
        db.read(pages[0])
        db.finish_instant_restore()
        phases = [
            e.fields.get("phase") for e in tracer.events
            if e.kind == ev.RESTORE_PROGRESS
        ]
        assert phases[0] == "begin"
        assert phases[-1] == "complete"
        assert "page" in phases
        sources = {
            e.fields.get("source") for e in tracer.events
            if e.kind == ev.RESTORE_PROGRESS
            and e.fields.get("phase") == "page"
        }
        assert sources == {"on-demand", "background"}

    def test_finish_without_begin_raises(self):
        db, _ = build_db()
        with pytest.raises(RecoveryError):
            db.finish_instant_restore()

    def test_drain_is_idempotent(self):
        db, _ = build_db()
        db.media_failure()
        manager = db.begin_instant_restore(workers=2)
        outcome = db.finish_instant_restore()
        assert manager.drain() is outcome
        assert manager.complete
        assert all(
            count == db.layout.partition_size(p)
            for p, count in manager.progress().items()
        )


# ----------------------------------------------- fallback rejection tracing


class _StubGeneration:
    """Minimal BackupStore shape for exercising each rejection reason."""

    def __init__(self, backup_id=7, complete=True, completion_lsn=5,
                 scan_start=1, damaged=()):
        self.backup_id = backup_id
        self.is_complete = complete
        self.completion_lsn = completion_lsn
        self.media_scan_start_lsn = scan_start
        self._damaged = list(damaged)

    def damaged_pages(self):
        return list(self._damaged)


class TestFallbackRejectionTracing:
    def check(self, older, target, expect_reason):
        db = Database(pages_per_partition=[8])
        tracer = Tracer()
        metrics = Metrics()
        usable = _usable_fallback(older, target, db.log, tracer, metrics)
        assert not usable
        assert metrics.fallback_rejections == 1
        rejects = [
            e.fields for e in tracer.events
            if e.kind == ev.CHAIN_FALLBACK
            and e.fields.get("action") == "reject-generation"
        ]
        assert len(rejects) == 1
        assert rejects[0]["reason"] == expect_reason

    def test_incomplete_generation_traced(self):
        self.check(_StubGeneration(complete=False), 10,
                   REJECT_NOT_COMPLETE)

    def test_none_generation_traced(self):
        self.check(None, 10, REJECT_NOT_COMPLETE)

    def test_completion_past_target_traced(self):
        self.check(_StubGeneration(completion_lsn=50), 10,
                   REJECT_PAST_TARGET)

    def test_truncated_log_traced(self):
        db = Database(pages_per_partition=[8])
        for i in range(6):
            db.execute(PhysicalWrite(pid(i), i))
            db.flush_page(pid(i))
        db.log.truncate_prefix(4)
        tracer = Tracer()
        metrics = Metrics()
        older = _StubGeneration(scan_start=1, completion_lsn=3)
        assert not _usable_fallback(older, 10, db.log, tracer, metrics)
        assert metrics.fallback_rejections == 1
        reasons = [
            e.fields.get("reason") for e in tracer.events
            if e.fields.get("action") == "reject-generation"
        ]
        assert reasons == [REJECT_LOG_TRUNCATED]

    def test_damaged_generation_traced_with_corruption_event(self):
        db, _ = build_db(parts=1, size=8)
        backup = db.latest_backup()
        rot_backup_page(backup, backup.copy_order()[0])
        tracer = Tracer()
        metrics = Metrics()
        assert not _usable_fallback(
            backup, db.log.end_lsn, db.log, tracer, metrics
        )
        assert metrics.fallback_rejections == 1
        kinds = [e.kind for e in tracer.events]
        assert ev.CORRUPTION_DETECTED in kinds
        reasons = [
            e.fields.get("reason") for e in tracer.events
            if e.fields.get("action") == "reject-generation"
        ]
        assert reasons == [REJECT_DAMAGED]

    def test_media_recover_counts_rejections_end_to_end(self):
        """Both generations rotted: each rejection lands in Metrics."""
        db = Database(pages_per_partition=[32])
        for slot in range(8):
            db.execute(PhysicalWrite(pid(slot), ("gen1", slot)))
            db.flush_page(pid(slot))
        db.checkpoint()
        db.start_backup(BackupConfig(steps=4))
        gen1 = db.run_backup(BackupConfig(pages_per_tick=32))
        db.start_backup(BackupConfig(steps=4))
        gen2 = db.run_backup(BackupConfig(pages_per_tick=32))
        rot_backup_page(gen1, gen1.copy_order()[0])
        rot_backup_page(gen2, gen2.copy_order()[0])
        db.media_failure()
        outcome = db.media_recover()
        assert outcome.degraded
        assert db.metrics.fallback_rejections >= 1


# ------------------------------------------------- out-of-layout drop trace


class TestOutOfLayoutDrops:
    def test_drop_is_traced_and_counted(self):
        stable = StableDatabase(Layout([4]))
        tracer = Tracer()
        metrics = Metrics()
        outside = PageId(3, 99)
        installed = install_recovered_page(
            stable, outside, PageVersion("x", 5), None, tracer, metrics
        )
        assert not installed
        assert metrics.pages_dropped_out_of_layout == 1
        drops = [
            e.fields for e in tracer.events if e.kind == ev.RESTORE_DROP
        ]
        assert drops == [
            {"page": str(outside), "reason": "out-of-layout",
             "kind": "media"}
        ]

    def test_in_layout_page_installs_normally(self):
        stable = StableDatabase(Layout([4]))
        metrics = Metrics()
        assert install_recovered_page(
            stable, pid(2), PageVersion("y", 3), None, None, metrics
        )
        assert metrics.pages_dropped_out_of_layout == 0
        assert stable.read_page(pid(2)).value == "y"


# ----------------------------------------------------- streamed restore path


class TestStreamedRestore:
    def test_restore_from_accepts_iterables(self):
        stable = StableDatabase(Layout([4]))
        stable.fail_media()
        versions = [(pid(s), PageVersion(("s", s), s + 1)) for s in range(3)]
        stable.restore_from(iter(versions), initial_value=None)
        for page, version in versions:
            assert stable.read_page(page) == version
        assert stable.read_page(pid(3)).page_lsn == NULL_LSN

    def test_restore_from_still_accepts_mappings(self):
        stable = StableDatabase(Layout([4]))
        stable.restore_from({pid(1): PageVersion("m", 9)})
        assert stable.read_page(pid(1)).value == "m"

    def test_media_recovery_single_pass_matches_oracle(self):
        db, _ = build_db()
        db.media_failure()
        outcome = db.media_recover()
        assert outcome.ok
        assert outcome.diffs == []
