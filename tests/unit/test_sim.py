"""Unit tests for simulation support: oracle, metrics, failure, runner."""

import pytest

from repro.db import Database
from repro.ids import PageId
from repro.ops.logical import CopyOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.sim.failure import CrashPlan, FailureInjector
from repro.sim.metrics import Metrics
from repro.sim.oracle import oracle_state_at
from repro.sim.runner import InterleavedRun
from repro.errors import ReproError
from repro.workloads import page_oriented_workload


def pid(slot):
    return PageId(0, slot)


class TestOracle:
    def test_tracks_logical_state(self):
        db = Database(pages_per_partition=[8])
        db.execute(PhysicalWrite(pid(0), "a"))
        db.execute(CopyOp(pid(0), pid(1)))
        assert db.oracle.value(pid(1)) == "a"
        assert db.oracle.applied_through == 2

    def test_oracle_state_at_historic_lsn(self):
        db = Database(pages_per_partition=[8])
        db.execute(PhysicalWrite(pid(0), "a"))
        db.execute(PhysicalWrite(pid(0), "b"))
        assert oracle_state_at(db.log, 1)[pid(0)] == "a"
        assert oracle_state_at(db.log, 2)[pid(0)] == "b"

    def test_rebuild_after_lost_tail(self):
        db = Database(pages_per_partition=[8], auto_force_log=False)
        db.execute(PhysicalWrite(pid(0), "kept"))
        db.log.force()
        db.execute(PhysicalWrite(pid(0), "lost"))
        db.crash()
        assert db.oracle.value(pid(0)) == "kept"


class TestMetrics:
    def test_extra_logging_fraction(self):
        metrics = Metrics()
        assert metrics.extra_logging_fraction == 0.0
        metrics.record_decision("done", True)
        metrics.record_decision("pend", False)
        assert metrics.extra_logging_fraction == pytest.approx(0.5)
        assert metrics.decisions_by_region == {"done": 1, "pend": 1}
        assert metrics.iwof_by_region == {"done": 1}

    def test_snapshot_keys(self):
        snapshot = Metrics().snapshot()
        assert "extra_logging_fraction" in snapshot
        assert "backup_pages_copied" in snapshot


class TestFailureInjection:
    def test_crash_plan_fires_once(self):
        db = Database(pages_per_partition=[8])
        injector = FailureInjector(db, [CrashPlan(at_tick=2, kind="crash")])
        assert injector.check(0) is None
        assert injector.check(2) is not None
        assert injector.check(3) is None
        assert len(injector.fired) == 1

    def test_media_plan(self):
        db = Database(pages_per_partition=[8])
        injector = FailureInjector(db, [CrashPlan(0, kind="media")])
        injector.check(0)
        assert db.stable.failed

    def test_bad_kind_rejected(self):
        with pytest.raises(ReproError):
            CrashPlan(0, kind="gremlins")


class TestInterleavedRun:
    def test_run_completes_backup(self):
        db = Database(pages_per_partition=[64], policy="general")
        workload = page_oriented_workload(db.layout, seed=1, count=None)
        run = InterleavedRun(db, workload, backup_steps=4)
        result = run.run(max_ticks=1000)
        assert result.backup is not None
        assert result.backup.is_complete
        assert result.ops_executed > 0

    def test_deterministic_given_seed(self):
        def go():
            db = Database(pages_per_partition=[64], policy="general")
            workload = page_oriented_workload(db.layout, seed=1, count=None)
            result = InterleavedRun(db, workload, seed=3).run(1000)
            return (result.ticks, result.ops_executed, db.log.end_lsn)

        assert go() == go()

    def test_injected_crash_stops_run(self):
        db = Database(pages_per_partition=[64], policy="general")
        workload = page_oriented_workload(db.layout, seed=1, count=None)
        injector = FailureInjector(db, [CrashPlan(at_tick=3)])
        result = InterleavedRun(db, workload, injector=injector).run(1000)
        assert result.crashed
        assert result.ticks == 4
