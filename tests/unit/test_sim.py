"""Unit tests for simulation support: oracle, metrics, failure, runner."""

import pytest

from repro.db import Database
from repro.ids import PageId
from repro.ops.logical import CopyOp
from repro.ops.physical import PhysicalWrite
from repro.ops.physiological import PhysiologicalWrite
from repro.sim.failure import CrashPlan, FailureInjector
from repro.sim.metrics import Metrics
from repro.sim.oracle import oracle_state_at
from repro.sim.runner import InterleavedRun
from repro.errors import ReproError
from repro.workloads import page_oriented_workload


def pid(slot):
    return PageId(0, slot)


class TestOracle:
    def test_tracks_logical_state(self):
        db = Database(pages_per_partition=[8])
        db.execute(PhysicalWrite(pid(0), "a"))
        db.execute(CopyOp(pid(0), pid(1)))
        assert db.oracle.value(pid(1)) == "a"
        assert db.oracle.applied_through == 2

    def test_oracle_state_at_historic_lsn(self):
        db = Database(pages_per_partition=[8])
        db.execute(PhysicalWrite(pid(0), "a"))
        db.execute(PhysicalWrite(pid(0), "b"))
        assert oracle_state_at(db.log, 1)[pid(0)] == "a"
        assert oracle_state_at(db.log, 2)[pid(0)] == "b"

    def test_rebuild_after_lost_tail(self):
        db = Database(pages_per_partition=[8], auto_force_log=False)
        db.execute(PhysicalWrite(pid(0), "kept"))
        db.log.force()
        db.execute(PhysicalWrite(pid(0), "lost"))
        db.crash()
        assert db.oracle.value(pid(0)) == "kept"


class TestMetrics:
    def test_extra_logging_fraction(self):
        metrics = Metrics()
        assert metrics.extra_logging_fraction == 0.0
        metrics.record_decision("done", True, step=1)
        metrics.record_decision("pend", False, step=1)
        assert metrics.extra_logging_fraction == pytest.approx(0.5)
        assert metrics.decisions_by_region == {"done": 1, "pend": 1}
        assert metrics.iwof_by_region == {"done": 1}

    def test_snapshot_keys(self):
        snapshot = Metrics().snapshot()
        assert "extra_logging_fraction" in snapshot
        assert "backup_pages_copied" in snapshot


class TestFailureInjection:
    def test_crash_plan_fires_once(self):
        db = Database(pages_per_partition=[8])
        injector = FailureInjector(db, [CrashPlan(at_tick=2, kind="crash")])
        assert injector.check(0) is None
        assert injector.check(2) is not None
        assert injector.check(3) is None
        assert len(injector.fired) == 1

    def test_media_plan(self):
        db = Database(pages_per_partition=[8])
        injector = FailureInjector(db, [CrashPlan(0, kind="media")])
        injector.check(0)
        assert db.stable.failed

    def test_bad_kind_rejected(self):
        with pytest.raises(ReproError):
            CrashPlan(0, kind="gremlins")

    def test_two_plans_due_same_tick_fire_one_per_call(self):
        """check() fires at most one plan per call, so two failures due
        at the same tick arrive on consecutive checks, not together."""
        db = Database(pages_per_partition=[8])
        injector = FailureInjector(
            db, [CrashPlan(2, kind="crash"), CrashPlan(2, kind="media")]
        )
        first = injector.check(2)
        assert first is not None and first.kind == "crash"
        assert not db.stable.failed  # media plan still pending
        second = injector.check(2)
        assert second is not None and second.kind == "media"
        assert db.stable.failed
        assert injector.check(2) is None
        assert [p.kind for p in injector.fired] == ["crash", "media"]

    def test_plan_at_tick_zero_fires_immediately(self):
        db = Database(pages_per_partition=[8])
        injector = FailureInjector(db, [CrashPlan(0)])
        plan = injector.check(0)
        assert plan is not None and plan.at_tick == 0
        assert injector.check(0) is None

    def test_media_failure_while_backup_in_progress(self):
        """A media plan firing mid-backup aborts the sweep; recovery must
        fall back to the previous completed backup."""
        from repro.core.config import BackupConfig

        db = Database(pages_per_partition=[8])
        for slot in range(8):
            db.execute(PhysicalWrite(PageId(0, slot), ("v", slot)))
        db.start_backup(BackupConfig(steps=2))
        old = db.run_backup()
        for slot in range(4):
            db.execute(PhysicalWrite(PageId(0, slot), ("w", slot)))
        db.start_backup(BackupConfig(steps=2))
        db.backup_step(2)
        assert db.backup_in_progress()
        injector = FailureInjector(db, [CrashPlan(5, kind="media")])
        assert injector.check(5) is not None
        # The in-flight image was aborted, not completed.
        assert not db.backup_in_progress()
        assert db.latest_backup() is old
        assert db.media_recover().ok


class TestInterleavedRun:
    def test_run_completes_backup(self):
        db = Database(pages_per_partition=[64], policy="general")
        workload = page_oriented_workload(db.layout, seed=1, count=None)
        run = InterleavedRun(db, workload, backup_steps=4)
        result = run.run(max_ticks=1000)
        assert result.backup is not None
        assert result.backup.is_complete
        assert result.ops_executed > 0

    def test_deterministic_given_seed(self):
        def go():
            db = Database(pages_per_partition=[64], policy="general")
            workload = page_oriented_workload(db.layout, seed=1, count=None)
            result = InterleavedRun(db, workload, seed=3).run(1000)
            return (result.ticks, result.ops_executed, db.log.end_lsn)

        assert go() == go()

    def test_injected_crash_stops_run(self):
        db = Database(pages_per_partition=[64], policy="general")
        workload = page_oriented_workload(db.layout, seed=1, count=None)
        injector = FailureInjector(db, [CrashPlan(at_tick=3)])
        result = InterleavedRun(db, workload, injector=injector).run(1000)
        assert result.crashed
        assert result.ticks == 4

    def test_io_fault_crash_stops_run_recoverably(self):
        from repro.sim.failure import IOFaultPlan

        db = Database(pages_per_partition=[64], policy="general")
        workload = page_oriented_workload(db.layout, seed=1, count=None)
        injector = FailureInjector(db, [IOFaultPlan(at_io=25)])
        result = InterleavedRun(db, workload, injector=injector).run(1000)
        assert result.crashed
        assert injector.faults_injected == 1
        outcome = db.recover()
        assert outcome.ok
        assert outcome.faults_survived == 1

    def test_io_transients_survived_in_run(self):
        from repro.sim.failure import IOFaultPlan
        from repro.sim.faults import FaultKind, IOPoint

        db = Database(pages_per_partition=[64], policy="general")
        workload = page_oriented_workload(db.layout, seed=1, count=None)
        injector = FailureInjector(db, [
            IOFaultPlan(at_io=2, kind=FaultKind.TRANSIENT,
                        point=IOPoint.LOG_APPEND, times=2),
            IOFaultPlan(at_io=1, kind=FaultKind.TRANSIENT,
                        point=IOPoint.STABLE_MULTI_WRITE),
        ])
        result = InterleavedRun(db, workload, injector=injector).run(1000)
        assert not result.crashed
        assert result.backup is not None and result.backup.is_complete
        assert db.metrics.io_retries >= 3
