"""Unit tests for recoverability checkers (diffs and order violations)."""

from repro.ids import PageId
from repro.ops.identity import IdentityWrite
from repro.ops.logical import CopyOp
from repro.ops.physiological import PhysiologicalWrite
from repro.ops.tree import MovRec, RmvRec
from repro.recovery.explain import diff_states, find_order_violations
from repro.storage.page import PageVersion
from repro.wal.log_manager import LogManager


def pid(slot):
    return PageId(0, slot)


def logged(*ops):
    log = LogManager()
    return [log.append(op) for op in ops]


class TestDiffStates:
    def test_equal_states(self):
        recovered = {pid(0): PageVersion("a", 1)}
        assert diff_states(recovered, {pid(0): "a"}) == []

    def test_value_mismatch(self):
        recovered = {pid(0): PageVersion("a", 1)}
        diffs = diff_states(recovered, {pid(0): "b"})
        assert diffs == [(pid(0), "a", "b")]

    def test_missing_page_compared_to_initial(self):
        diffs = diff_states({}, {pid(0): "x"}, initial_value=None)
        assert diffs == [(pid(0), None, "x")]
        assert diff_states({}, {pid(0): None}) == []


class TestOrderViolations:
    def test_figure1_backup_state_is_flagged(self):
        """B holds old's post-split value but not new's: violation."""
        old, new = pid(20), pid(2)
        records = logged(MovRec(old, 4, new), RmvRec(old, 4))
        backup_state = {
            old: PageVersion(((1, "a"),), 2),  # RmvRec (LSN 2) applied
            new: PageVersion(None, 0),         # MovRec (LSN 1) missing
        }
        violations = find_order_violations(backup_state, records)
        assert len(violations) == 1
        v = violations[0]
        assert (v.reader_lsn, v.writer_lsn, v.page) == (1, 2, old)
        assert v.lost_targets == (new,)

    def test_correct_flush_order_is_clean(self):
        old, new = pid(20), pid(2)
        records = logged(MovRec(old, 4, new), RmvRec(old, 4))
        good_state = {
            old: PageVersion(((1, "a"),), 2),
            new: PageVersion(((5, "e"),), 1),  # MovRec's effect present
        }
        assert find_order_violations(good_state, records) == []

    def test_iwof_record_covers_lost_target(self):
        """An identity write after the reader makes its value available
        from the log: no violation even when the state looks stale."""
        old, new = pid(20), pid(2)
        records = logged(
            MovRec(old, 4, new),
            RmvRec(old, 4),
            IdentityWrite(new, ((5, "e"),)),
        )
        backup_state = {
            old: PageVersion(((1, "a"),), 2),
            new: PageVersion(None, 0),
        }
        assert find_order_violations(backup_state, records) == []

    def test_reader_absent_and_uncovered_but_writer_absent_too(self):
        """If neither update is in the state, replay regenerates both."""
        old, new = pid(20), pid(2)
        records = logged(MovRec(old, 4, new), RmvRec(old, 4))
        state = {
            old: PageVersion(((1, "a"), (5, "e")), 0),
            new: PageVersion(None, 0),
        }
        assert find_order_violations(state, records) == []

    def test_copy_chain_violation(self):
        x, y = pid(0), pid(1)
        records = logged(
            CopyOp(x, y),
            PhysiologicalWrite(x, "increment"),
        )
        state = {
            x: PageVersion(1, 2),          # increment present
            y: PageVersion(None, 0),       # copy missing
        }
        violations = find_order_violations(state, records)
        assert [v.page for v in violations] == [x]
