"""Unit tests for identifier types."""

import pytest

from repro.ids import NULL_LSN, AppId, PageId, page_range


class TestPageId:
    def test_ordering_is_lexicographic(self):
        assert PageId(0, 5) < PageId(0, 6)
        assert PageId(0, 99) < PageId(1, 0)

    def test_equality_and_hash(self):
        assert PageId(1, 2) == PageId(1, 2)
        assert len({PageId(1, 2), PageId(1, 2), PageId(1, 3)}) == 2

    def test_negative_partition_rejected(self):
        with pytest.raises(ValueError):
            PageId(-1, 0)

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            PageId(0, -1)

    def test_repr_compact(self):
        assert repr(PageId(2, 7)) == "P2:7"


class TestAppId:
    def test_ordering_by_name(self):
        assert AppId("a") < AppId("b")

    def test_hashable(self):
        assert len({AppId("x"), AppId("x")}) == 1


class TestPageRange:
    def test_yields_consecutive_slots(self):
        pages = list(page_range(1, 3, start=5))
        assert pages == [PageId(1, 5), PageId(1, 6), PageId(1, 7)]

    def test_empty_range(self):
        assert list(page_range(0, 0)) == []


def test_null_lsn_sorts_first():
    assert NULL_LSN == 0
    assert NULL_LSN < 1
