"""Unit tests for the KVStore facade."""

import random

import pytest

from repro.errors import ReproError
from repro.kvstore import KVStore


@pytest.fixture
def store():
    return KVStore.create(capacity_pages=128, order=8)


class TestKVBasics:
    def test_put_get(self, store):
        store.put(1, "one")
        assert store.get(1) == "one"
        assert store.get(2) is None
        assert store.get(2, default="fallback") == "fallback"

    def test_overwrite(self, store):
        store.put(1, "a")
        store.put(1, "b")
        assert store.get(1) == "b"
        assert len(store) == 1

    def test_delete(self, store):
        store.put(1, "one")
        assert store.delete(1)
        assert not store.delete(1)
        assert 1 not in store

    def test_contains_and_len(self, store):
        for key in range(10):
            store.put(key, key)
        assert len(store) == 10
        assert 5 in store
        assert 50 not in store

    def test_range_scan(self, store):
        for key in range(20):
            store.put(key, key * 10)
        assert list(store.range(5, 8)) == [
            (5, 50), (6, 60), (7, 70), (8, 80)
        ]

    def test_items_ordered(self, store):
        rng = random.Random(1)
        keys = list(range(50))
        rng.shuffle(keys)
        for key in keys:
            store.put(key, key)
        assert [k for k, _ in store.items()] == sorted(keys)

    def test_stats(self, store):
        store.put(1, "x")
        stats = store.stats()
        assert stats["keys"] == 1
        assert stats["log_records"] > 0


class TestKVDurability:
    def test_crash_and_recover(self, store):
        for key in range(30):
            store.put(key, ("v", key))
        outcome = store.simulate_crash()
        assert outcome.ok
        assert store.get(17) == ("v", 17)
        assert len(store) == 30

    def test_backup_and_media_restore(self, store):
        for key in range(30):
            store.put(key, key)
        store.online_backup(steps=4)
        for key in range(30, 50):
            store.put(key, key)  # after the backup: on the media log
        store.simulate_media_failure()
        store.restore_from_backup()
        assert len(store) == 50
        assert store.get(45) == 45

    def test_incremental_backup(self, store):
        for key in range(20):
            store.put(key, key)
        store.online_backup(steps=4)
        store.put(99, "late")
        incremental = store.online_backup(steps=4, incremental=True)
        assert incremental.copied_count() < 20
        store.simulate_media_failure()
        outcome = store.db.media_recover_chain()
        assert outcome.ok

    def test_restore_requires_backup(self, store):
        store.put(1, 1)
        store.simulate_media_failure()
        from repro.errors import NoBackupError

        with pytest.raises(NoBackupError):
            store.restore_from_backup()

    def test_online_backup_interleaved_via_db(self, store):
        rng = random.Random(2)
        for key in range(40):
            store.put(key, key)
        store.db.start_backup(steps=8)
        key = 100
        while store.db.backup_in_progress():
            store.db.backup_step(4)
            store.put(key, key)
            store.delete(key - 100)
            key += 1
            store.db.install_some(2, rng)
        store.simulate_media_failure()
        store.restore_from_backup()
        assert store.get(0, "gone") == "gone"
        assert store.get(100) == 100
