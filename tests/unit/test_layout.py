"""Unit tests for the physical layout / backup order."""

import pytest

from repro.errors import PartitionError
from repro.ids import PageId
from repro.storage.layout import MIN_POS, Layout


class TestLayoutBasics:
    def test_needs_a_partition(self):
        with pytest.raises(PartitionError):
            Layout([])

    def test_rejects_empty_partition(self):
        with pytest.raises(PartitionError):
            Layout([4, 0])

    def test_sizes(self):
        layout = Layout([4, 8])
        assert layout.num_partitions == 2
        assert layout.partition_size(0) == 4
        assert layout.partition_size(1) == 8
        assert layout.total_pages() == 12

    def test_position_is_slot(self):
        layout = Layout([4, 8])
        assert layout.position(PageId(1, 5)) == 5

    def test_position_checks_membership(self):
        layout = Layout([4])
        with pytest.raises(PartitionError):
            layout.position(PageId(0, 4))
        with pytest.raises(PartitionError):
            layout.position(PageId(1, 0))

    def test_min_max_sentinels_bracket_positions(self):
        layout = Layout([4])
        assert layout.min_pos(0) == MIN_POS == -1
        assert layout.max_pos(0) == 4
        for page in layout.pages_in_partition(0):
            assert layout.min_pos(0) < layout.position(page) < layout.max_pos(0)

    def test_all_pages_in_backup_order(self):
        layout = Layout([2, 2])
        assert list(layout.all_pages()) == [
            PageId(0, 0), PageId(0, 1), PageId(1, 0), PageId(1, 1),
        ]


class TestStepBoundaries:
    def test_last_boundary_is_max(self):
        layout = Layout([100])
        for steps in (1, 2, 3, 7, 8, 100, 200):
            boundaries = layout.step_boundaries(0, steps)
            assert boundaries[-1] == layout.max_pos(0)

    def test_boundaries_strictly_increasing(self):
        layout = Layout([100])
        for steps in (1, 2, 3, 7, 8, 64):
            boundaries = layout.step_boundaries(0, steps)
            assert all(a < b for a, b in zip(boundaries, boundaries[1:]))

    def test_equal_steps(self):
        layout = Layout([100])
        assert layout.step_boundaries(0, 4) == [25, 50, 75, 100]

    def test_one_step_covers_everything(self):
        layout = Layout([10])
        assert layout.step_boundaries(0, 1) == [10]

    def test_more_steps_than_pages_degenerates(self):
        layout = Layout([3])
        assert layout.step_boundaries(0, 10) == [1, 2, 3]

    def test_zero_steps_rejected(self):
        with pytest.raises(ValueError):
            Layout([10]).step_boundaries(0, 0)
