"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.StorageError,
            errors.PageNotFoundError,
            errors.PartitionError,
            errors.MediaFailureError,
            errors.LogError,
            errors.WALViolationError,
            errors.LogTruncatedError,
            errors.RecoveryError,
            errors.UnrecoverableError,
            errors.CacheError,
            errors.FlushOrderError,
            errors.LatchError,
            errors.BackupError,
            errors.BackupInProgressError,
            errors.NoBackupError,
            errors.OperationError,
            errors.WriteGraphError,
        ],
    )
    def test_all_catchable_as_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_storage_family(self):
        for exc in (
            errors.PageNotFoundError,
            errors.PartitionError,
            errors.MediaFailureError,
        ):
            assert issubclass(exc, errors.StorageError)

    def test_log_family(self):
        for exc in (errors.WALViolationError, errors.LogTruncatedError):
            assert issubclass(exc, errors.LogError)

    def test_backup_family(self):
        for exc in (errors.BackupInProgressError, errors.NoBackupError):
            assert issubclass(exc, errors.BackupError)

    def test_page_not_found_carries_page(self):
        from repro.ids import PageId

        exc = errors.PageNotFoundError(PageId(0, 3))
        assert exc.page_id == PageId(0, 3)
        assert "P0:3" in str(exc)

    def test_transaction_error_is_repro_error(self):
        from repro.txn import TransactionError

        assert issubclass(TransactionError, errors.ReproError)

    def test_one_catch_covers_a_whole_flow(self):
        """The promise of the hierarchy: except ReproError is enough."""
        from repro.db import Database

        db = Database(pages_per_partition=[8])
        db.media_failure()
        with pytest.raises(errors.ReproError):
            db.read(__import__("repro.ids", fromlist=["PageId"]).PageId(0, 0))
        with pytest.raises(errors.ReproError):
            db.media_recover()
