"""Unit tests for the bench regression gate (repro.harness.bench).

The gate's noise envelope must scale to each benchmark's own history:
with three or more accumulated entries the limit is
``mean + max(3 * stdev, 2% of mean)`` of the historical min_ms values;
with fewer it falls back to the flat threshold over the newest entry.
"""

import json

import pytest

from repro.harness.bench import BENCHMARKS, check_regressions


def _baseline(path, series):
    """Write a baseline file whose entries carry ``series`` per name.

    ``series`` maps benchmark name -> list of historical min_ms values;
    the i-th entry holds the i-th value of every series long enough.
    """
    depth = max(len(v) for v in series.values())
    entries = []
    for i in range(depth):
        results = {
            name: {"min_ms": values[i]}
            for name, values in series.items()
            if i < len(values)
        }
        entries.append({"label": f"e{i}", "results": results})
    path.write_text(json.dumps({"entries": entries}))
    return str(path)


def test_flat_gate_with_sparse_history(tmp_path):
    path = _baseline(tmp_path / "b.json", {"bench": [10.0, 11.0]})
    # 25% over the newest entry (11.0): limit 13.75.
    assert check_regressions({"bench": {"min_ms": 13.0}}, path,
                             quiet=True) == []
    assert check_regressions({"bench": {"min_ms": 14.0}}, path,
                             quiet=True) == ["bench"]


def test_envelope_scales_to_noisy_history(tmp_path):
    # Noisy history: mean 100, stdev ~10 => limit ~130.  A flat 25% gate
    # against the newest entry (90) would wrongly fail 115.
    path = _baseline(tmp_path / "b.json",
                     {"bench": [110.0, 100.0, 90.0]})
    assert check_regressions({"bench": {"min_ms": 115.0}}, path,
                             quiet=True) == []
    assert check_regressions({"bench": {"min_ms": 140.0}}, path,
                             quiet=True) == ["bench"]


def test_envelope_is_tight_for_stable_history(tmp_path):
    # Near-zero stdev: the 2%-of-mean floor applies, so a 25% regression
    # that the flat gate would wave through now fails.
    path = _baseline(tmp_path / "b.json",
                     {"bench": [100.0, 100.0, 100.0, 100.0]})
    assert check_regressions({"bench": {"min_ms": 101.0}}, path,
                             quiet=True) == []
    assert check_regressions({"bench": {"min_ms": 110.0}}, path,
                             quiet=True) == ["bench"]


def test_baseline_label_pins_flat_gate(tmp_path):
    path = _baseline(tmp_path / "b.json",
                     {"bench": [100.0, 50.0, 50.0]})
    # Pinned to e0 (100.0): flat gate, 120 passes despite the newer 50s.
    assert check_regressions({"bench": {"min_ms": 120.0}}, path,
                             baseline_label="e0", quiet=True) == []
    # Unpinned: envelope over [100, 50, 50] (limit ~153) fails 160.
    assert check_regressions({"bench": {"min_ms": 160.0}}, path,
                             quiet=True) == ["bench"]


def test_new_benchmark_passes_without_history(tmp_path):
    path = _baseline(tmp_path / "b.json", {"bench": [10.0]})
    assert check_regressions({"fresh": {"min_ms": 99.0}}, path,
                             quiet=True) == []


def test_missing_baseline_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        check_regressions({"bench": {"min_ms": 1.0}},
                          str(tmp_path / "absent.json"), quiet=True)


def test_append_force_benchmarks_registered():
    for name in ("log_append_force_single", "log_append_force_gc1",
                 "log_append_force_4s"):
        assert name in BENCHMARKS
