"""Unit tests for the log analysis pass."""

import pytest

from repro.db import Database
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite
from repro.recovery.analysis_pass import analyze_log


def pid(slot):
    return PageId(0, slot)


@pytest.fixture
def db():
    return Database(pages_per_partition=[16], policy="general")


class TestAnalyzeLog:
    def test_empty_log(self, db):
        result = analyze_log(db.log)
        assert result.checkpoint_lsn is None
        assert result.redo_scan_start == 1
        assert result.dirty_page_table == {}

    def test_no_checkpoint_scans_everything(self, db):
        db.execute(PhysicalWrite(pid(0), "a"))
        db.execute(PhysicalWrite(pid(1), "b"))
        result = analyze_log(db.log)
        assert result.redo_scan_start == 1
        assert set(result.dirty_page_table) == {pid(0), pid(1)}

    def test_checkpoint_bounds_the_scan(self, db):
        db.execute(PhysicalWrite(pid(0), "a"))
        db.checkpoint()
        record = db.take_checkpoint()
        db.execute(PhysicalWrite(pid(1), "b"))
        result = analyze_log(db.log)
        assert result.checkpoint_lsn == record.lsn
        # pid(0) was clean at the checkpoint; only pid(1) after it.
        assert set(result.dirty_page_table) == {pid(1)}
        assert result.redo_scan_start == record.lsn + 1

    def test_checkpointed_dirty_pages_kept(self, db):
        first = db.execute(PhysicalWrite(pid(0), "a"))
        db.take_checkpoint()
        result = analyze_log(db.log)
        assert result.dirty_page_table[pid(0)] == first.lsn
        assert result.redo_scan_start == first.lsn

    def test_analysis_is_upper_bound(self, db):
        """Pages flushed after their update still appear in the table —
        flushes are not logged; the LSN redo test absorbs the slack."""
        db.execute(PhysicalWrite(pid(0), "a"))
        db.flush_page(pid(0))
        result = analyze_log(db.log)
        assert pid(0) in result.dirty_page_table

    def test_summary_string(self, db):
        db.take_checkpoint()
        assert "checkpoint@" in analyze_log(db.log).summary()


class TestAnalyzedRecovery:
    def test_recovers_without_volatile_state(self, db):
        from repro.ops.logical import CopyOp

        db.execute(PhysicalWrite(pid(0), "seed"))
        db.flush_page(pid(0))
        db.take_checkpoint()
        db.execute(CopyOp(pid(0), pid(1)))
        db.execute(PhysicalWrite(pid(2), "tail"))
        db.crash()
        outcome = db.recover(from_log_only=True)
        assert outcome.ok, outcome.diffs[:3]
        assert db.stable.read_page(pid(1)).value == "seed"

    def test_equivalent_to_tracked_recovery(self, db):
        import random

        from repro.workloads import mixed_logical_workload

        rng = random.Random(5)
        for op in mixed_logical_workload(db.layout, seed=5, count=100):
            db.execute(op)
            if rng.random() < 0.3:
                db.install_some(1, rng)
            if rng.random() < 0.05:
                db.take_checkpoint()
        db.crash()
        outcome = db.recover(from_log_only=True)
        assert outcome.ok, outcome.diffs[:3]
