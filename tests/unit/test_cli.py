"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "Figure 1" in out

    def test_fig5_single_measurement(self, capsys):
        assert main(["fig5", "--kind", "tree", "--steps", "4",
                     "--pages", "256"]) == 0
        out = capsys.readouterr().out
        assert "tree" in out
        assert "measured" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "recovery OK" in out

    def test_figures_quick(self, capsys):
        assert main(["figures", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "FIG1 naive" in out
        assert "FIG5" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])
