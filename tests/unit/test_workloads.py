"""Unit tests for workload generators."""

import itertools

from repro.ops.base import OperationKind
from repro.ops.tree import is_tree_operation
from repro.storage.layout import Layout
from repro.workloads import (
    copy_chain_workload,
    fresh_copy_workload,
    mixed_logical_workload,
    page_oriented_workload,
    tree_split_workload,
)


def take(iterator, n):
    return list(itertools.islice(iterator, n))


class TestPageOriented:
    def test_all_ops_page_oriented(self):
        layout = Layout([32])
        ops = take(page_oriented_workload(layout, seed=1), 100)
        assert all(op.is_page_oriented for op in ops)

    def test_count_respected(self):
        layout = Layout([32])
        assert len(list(page_oriented_workload(layout, 1, count=17))) == 17

    def test_deterministic(self):
        layout = Layout([32])
        a = [repr(op) for op in page_oriented_workload(layout, 5, count=20)]
        b = [repr(op) for op in page_oriented_workload(layout, 5, count=20)]
        assert a == b


class TestFreshCopy:
    def test_general_mode_emits_copies(self):
        layout = Layout([64])
        ops = take(fresh_copy_workload(layout, seed=1), 40)
        kinds = {op.kind for op in ops}
        assert OperationKind.LOGICAL in kinds

    def test_tree_mode_emits_write_new(self):
        layout = Layout([64])
        ops = take(fresh_copy_workload(layout, seed=1, tree_ops=True), 40)
        assert all(is_tree_operation(op) for op in ops)

    def test_targets_unique_until_recycled(self):
        layout = Layout([64])
        ops = take(fresh_copy_workload(layout, seed=1), 56)
        targets = [
            next(iter(op.writeset))
            for op in ops
            if op.kind is OperationKind.LOGICAL
        ]
        assert len(targets) == len(set(targets))


class TestCopyChain:
    def test_produces_flush_dependencies(self):
        layout = Layout([32])
        ops = list(copy_chain_workload(layout, seed=1, count=30))
        assert len(ops) == 30
        logical = [op for op in ops if op.kind is OperationKind.LOGICAL]
        assert logical


class TestMixed:
    def test_exercises_every_form(self):
        layout = Layout([32])
        ops = list(mixed_logical_workload(layout, seed=2, count=300))
        kinds = {op.kind for op in ops}
        assert OperationKind.PHYSICAL in kinds
        assert OperationKind.PHYSIOLOGICAL in kinds
        assert OperationKind.LOGICAL in kinds


class TestTreeSplit:
    def test_all_tree_class(self):
        layout = Layout([64])
        ops = list(tree_split_workload(layout, seed=3, count=150))
        assert all(is_tree_operation(op) for op in ops)

    def test_contains_splits(self):
        layout = Layout([64])
        ops = list(tree_split_workload(layout, seed=3, count=300))
        moves = [op for op in ops if op.kind is OperationKind.TREE_WRITE_NEW]
        assert moves, "workload should reach split threshold"
