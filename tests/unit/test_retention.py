"""Unit tests for log retention and physical truncation."""

import pytest

from repro.db import Database
from repro.errors import LogTruncatedError, NoBackupError
from repro.ids import PageId
from repro.ops.physical import PhysicalWrite


def pid(slot):
    return PageId(0, slot)


@pytest.fixture
def db():
    database = Database(pages_per_partition=[16], policy="general")
    for slot in range(8):
        database.execute(PhysicalWrite(pid(slot), ("seed", slot)))
    database.checkpoint()
    return database


class TestPhysicalTruncation:
    def test_lsn_addressing_stable_across_truncation(self, db):
        end = db.log.end_lsn
        db.log.truncate_prefix(5)
        assert db.log.first_retained_lsn == 5
        assert db.log.end_lsn == end
        assert db.log.record_at(5).lsn == 5
        with pytest.raises(LogTruncatedError):
            db.log.record_at(4)

    def test_scan_into_truncated_prefix_raises(self, db):
        db.log.truncate_prefix(5)
        with pytest.raises(LogTruncatedError):
            list(db.log.scan(1))
        assert [r.lsn for r in db.log.scan(5, 6)] == [5, 6]

    def test_truncate_is_idempotent_backwards(self, db):
        db.log.truncate_prefix(5)
        assert db.log.truncate_prefix(3) == 0
        assert db.log.first_retained_lsn == 5

    def test_appends_continue_after_truncation(self, db):
        db.log.truncate_prefix(5)
        record = db.execute(PhysicalWrite(pid(0), "after"))
        assert record.lsn == db.log.end_lsn


class TestRetentionPolicy:
    def test_backup_pins_its_scan_start(self, db):
        db.execute(PhysicalWrite(pid(0), "dirty"))   # pins via recLSN too
        db.flush_page(pid(0))
        db.start_backup(steps=2)
        backup = db.run_backup()
        assert (
            db.retention.safe_truncation_point()
            == backup.media_scan_start_lsn
        )

    def test_truncation_respects_backup_then_recovery_works(self, db):
        db.start_backup(steps=2)
        backup = db.run_backup()
        db.execute(PhysicalWrite(pid(3), "post"))
        db.flush_page(pid(3))
        db.truncate_log()
        db.media_failure()
        assert db.media_recover(backup=backup).ok

    def test_retiring_backup_releases_its_pin(self, db):
        db.start_backup(steps=2)
        first = db.run_backup()
        db.execute(PhysicalWrite(pid(0), "between"))
        db.flush_page(pid(0))
        db.start_backup(steps=2)
        second = db.run_backup()
        before = db.retention.safe_truncation_point()
        db.retire_backup(first)
        after = db.retention.safe_truncation_point()
        assert after >= before
        assert after == second.media_scan_start_lsn

    def test_retired_backup_is_unusable_after_truncation(self, db):
        db.start_backup(steps=2)
        first = db.run_backup()
        db.execute(PhysicalWrite(pid(0), "between"))
        db.flush_page(pid(0))
        db.start_backup(steps=2)
        second = db.run_backup()
        db.retire_backup(first)
        db.truncate_log()
        assert not db.retention.is_usable(first)
        assert db.retention.is_usable(second)
        assert db.retention.latest_usable_backup() is second

    def test_no_usable_backup_raises(self, db):
        db.start_backup(steps=2)
        backup = db.run_backup()
        db.retire_backup(backup)
        with pytest.raises(NoBackupError):
            db.retention.latest_usable_backup()

    def test_dirty_pages_pin_the_log(self, db):
        record = db.execute(PhysicalWrite(pid(0), "dirty"))
        assert db.retention.safe_truncation_point() <= record.lsn

    def test_active_backup_pins_the_log(self, db):
        db.start_backup(steps=4)
        run = db.engine.active
        db.backup_step(4)
        assert (
            db.retention.safe_truncation_point()
            <= run.backup.media_scan_start_lsn
        )
        db.run_backup()

    def test_iwof_unpins_hot_page(self, db):
        """§3.2: the identity write advances the safe truncation point
        even though the hot page is never flushed."""
        db.execute(PhysicalWrite(pid(0), "hot"))
        pinned = db.retention.safe_truncation_point()
        record = db.cm.identity_install(pid(0))
        assert db.retention.safe_truncation_point() == record.lsn > pinned
